"""Chaos end-to-end: kill workers and the coordinator, converge anyway.

Uses the ``REPRO_CHAOS_KILL`` hook to SIGKILL real worker subprocesses
mid-shard, and SIGKILLs a real CLI coordinator process mid-campaign.
The invariant in every scenario: the campaign terminates, and — unless
a shard was deliberately poisoned to quarantine — the merged journal
and aggregates are byte-identical to an undisturbed single-process run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.campaign import CampaignSpec, INFRA_ERROR
from repro.harness.campaign import run_campaign, write_aggregates
from repro.service.runner import run_sharded_campaign
from repro.service.shard import split_campaign


def chaos_spec():
    return CampaignSpec(workloads=("Triad",),
                        schemes=("baseline", "flame"), trials=3, seed=1,
                        scale="tiny")


def competitor_spec():
    """Three detecting runtimes from the scheme registry in one campaign:
    sharded recovery must replay DMR compare-parks and partial-thread
    vulnerability ranking deterministically, not just the Flame RBQ."""
    return CampaignSpec(workloads=("Triad",),
                        schemes=("flame", "dmr", "partial_thread"),
                        trials=2, seed=5, scale="tiny")


def read_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("chaos-oracle")
    journal = str(tmp / "inline.jsonl")
    report = run_campaign(chaos_spec(), workers=1, journal_path=journal)
    aggregates = str(tmp / "agg.json")
    write_aggregates(report, aggregates)
    return {"journal": read_bytes(journal),
            "aggregates": read_bytes(aggregates)}


@pytest.fixture(scope="module")
def competitor_oracle(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("chaos-competitor-oracle")
    journal = str(tmp / "inline.jsonl")
    run_campaign(competitor_spec(), workers=1, journal_path=journal)
    return {"journal": read_bytes(journal)}


class TestWorkerKill:
    def test_sigkilled_worker_requeues_and_converges(self, tmp_path,
                                                     oracle, monkeypatch):
        # Shard 1's first worker is SIGKILLed after journaling one
        # trial; the reclaiming worker must resume the shard and the
        # merged journal must still match the oracle byte-for-byte.
        sentinel = tmp_path / "killed"
        monkeypatch.setenv("REPRO_CHAOS_KILL", f"1:1:{sentinel}")
        metrics = tmp_path / "metrics.jsonl"
        journal = str(tmp_path / "merged.jsonl")
        report = run_sharded_campaign(
            chaos_spec(), shards=3, backend="subprocess", workers=2,
            journal_path=journal, shard_dir=str(tmp_path / "shards"),
            metrics_path=str(metrics), backoff_base_s=0.05,
            poll_interval_s=0.1, heartbeat_interval_s=0.2)
        assert sentinel.exists()  # the kill actually fired
        assert report.complete
        assert report.infra_failures == 0
        assert read_bytes(journal) == oracle["journal"]
        final = json.loads(metrics.read_text().splitlines()[-1])
        assert final["worker_restarts"] >= 1
        assert final["shards_done"] == 3

    def test_sigkilled_worker_on_competitor_campaign(self, tmp_path,
                                                     competitor_oracle,
                                                     monkeypatch):
        # Same worker-kill scenario over a three-scheme competitor
        # campaign (flame, dmr, partial_thread): the reclaimed shard's
        # replayed trials exercise every runtime's checkpoint/restore
        # path, and the merged journal must still be byte-identical to
        # the undisturbed inline run.
        sentinel = tmp_path / "killed"
        monkeypatch.setenv("REPRO_CHAOS_KILL", f"1:1:{sentinel}")
        journal = str(tmp_path / "merged.jsonl")
        report = run_sharded_campaign(
            competitor_spec(), shards=3, backend="subprocess", workers=2,
            journal_path=journal, shard_dir=str(tmp_path / "shards"),
            backoff_base_s=0.05, poll_interval_s=0.1,
            heartbeat_interval_s=0.2)
        assert sentinel.exists()  # the kill actually fired
        assert report.complete
        assert report.infra_failures == 0
        assert read_bytes(journal) == competitor_oracle["journal"]

    def test_poison_shard_quarantines_with_infra_rows(self, tmp_path,
                                                      monkeypatch):
        # Shard 2's worker dies before measuring anything, on every
        # lease.  After fail_limit leases the shard is quarantined and
        # its trials degrade to infra_error placeholders — the campaign
        # terminates instead of hanging.
        monkeypatch.setenv("REPRO_CHAOS_KILL", "2:0:-")
        spec = chaos_spec()
        report = run_sharded_campaign(
            spec, shards=3, backend="subprocess", workers=2,
            journal_path=str(tmp_path / "merged.jsonl"),
            shard_dir=str(tmp_path / "shards"),
            fail_limit=2, backoff_base_s=0.05,
            poll_interval_s=0.1, heartbeat_interval_s=0.2)
        poisoned = {t.key for t in split_campaign(spec, 3)[2].trial_specs()}
        infra = [r for r in report.results if r.outcome == INFRA_ERROR]
        assert {r.key for r in infra} == poisoned
        assert report.infra_failures == len(poisoned)
        assert report.complete  # degraded, never dropped
        for row in infra:
            assert "quarantined" in row.detail
            assert row.attempts == 2


class TestCoordinatorKill:
    def test_coordinator_sigkill_and_restart_converges(self, tmp_path,
                                                       oracle):
        # Run the real CLI, SIGKILL the whole coordinator process once
        # shard journals show progress, rerun the identical command, and
        # demand byte-identical journal + aggregates vs the oracle.
        journal = tmp_path / "merged.jsonl"
        shard_dir = tmp_path / "shards"
        aggregates = tmp_path / "agg.json"
        command = [
            sys.executable, "-m", "repro.harness", "campaign",
            "--scale", "tiny", "--benchmarks", "Triad",
            "--schemes", "baseline,flame", "--trials", "3", "--seed", "1",
            "--backend", "subprocess", "--shards", "3", "--workers", "2",
            "--journal", str(journal), "--shard-dir", str(shard_dir),
            "--aggregate-json", str(aggregates),
            "--heartbeat-timeout", "10",
        ]
        env = dict(os.environ)
        env.pop("REPRO_CHAOS_KILL", None)
        proc = subprocess.Popen(command, env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if self._journaled_trials(shard_dir) >= 2:
                    break
                if proc.poll() is not None:
                    pytest.fail("campaign finished before it could be "
                                "killed; slow the spec down")
                time.sleep(0.05)
            else:
                pytest.fail("no shard progress within 120s")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # Orphaned workers may still be draining their shards; the
        # restarted coordinator must reconcile whatever they leave.
        rerun = subprocess.run(command, env=env, timeout=300,
                               stdout=subprocess.PIPE,
                               stderr=subprocess.STDOUT)
        assert rerun.returncode == 0, rerun.stdout.decode()
        assert read_bytes(str(journal)) == oracle["journal"]
        assert read_bytes(str(aggregates)) == oracle["aggregates"]

    @staticmethod
    def _journaled_trials(shard_dir) -> int:
        count = 0
        if not shard_dir.is_dir():
            return 0
        for name in os.listdir(shard_dir):
            if not name.startswith("shard_") or ".heartbeat" in name \
                    or not name.endswith(".jsonl"):
                continue
            try:
                with open(shard_dir / name, encoding="utf-8") as handle:
                    count += sum(1 for line in handle
                                 if '"type": "trial"' in line
                                 and line.endswith("\n"))
            except OSError:
                continue
        return count
