"""Shard math and merge determinism.

The service's central invariant under test: because trials are pure
functions of their coordinates, merging shard journals — however the
campaign was partitioned, in whatever order the rows are read, with
however many overlapping re-executions — reconstructs the inline
single-process journal byte-for-byte.
"""

import json
import os
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.campaign import (CampaignJournal, CampaignSpec, DUE_HANG,
                                 INFRA_ERROR, MASKED, RECOVERED, SDC,
                                 TrialResult, aggregate, merge_cells)
from repro.errors import ConfigError
from repro.service.shard import (ShardSpec, canonical_order,
                                 infra_placeholder, load_shard_results,
                                 merge_shard_results, missing_keys,
                                 split_campaign, write_merged_journal)


def fake_spec(trials=3, schemes=("baseline", "flame"), seed=7):
    return CampaignSpec(workloads=("Triad",), schemes=schemes,
                        trials=trials, seed=seed, scale="tiny")


_CYCLE = (MASKED, SDC, RECOVERED, DUE_HANG)


def fake_result(trial, outcome=None):
    """Deterministic synthetic row for ``trial`` (no simulation)."""
    if outcome is None:
        outcome = _CYCLE[(trial.index + len(trial.scheme)) % len(_CYCLE)]
    return TrialResult(workload=trial.workload, scheme=trial.scheme,
                       index=trial.index, outcome=outcome, site=trial.site,
                       strike_cycles=[trial.index + 1],
                       injector_seed=trial.index * 13,
                       golden_cycles=100 + trial.index,
                       cycles=100 + 2 * trial.index,
                       landed=1, recoveries=int(outcome == RECOVERED))


def fake_rows(spec):
    return [fake_result(t) for t in spec.trial_specs()]


def journal_bytes(spec, rows, path):
    """The bytes an inline run journaling ``rows`` in order would leave."""
    journal = CampaignJournal(path)
    journal.write_header(spec)
    for row in rows:
        journal.append(row)
    journal.close()
    with open(path, "rb") as handle:
        return handle.read()


class TestSplitCampaign:
    def test_partition_is_exact_and_contiguous(self):
        spec = fake_spec(trials=5)  # 10 trials over 2 cells
        shards = split_campaign(spec, 3)
        assert [s.shard_id for s in shards] == [0, 1, 2]
        assert shards[0].start == 0
        assert shards[-1].stop == len(spec.trial_specs())
        for before, after in zip(shards, shards[1:]):
            assert before.stop == after.start
        covered = [t.key for s in shards for t in s.trial_specs()]
        assert covered == [t.key for t in spec.trial_specs()]

    def test_partition_is_balanced(self):
        spec = fake_spec(trials=5)
        sizes = [s.trials for s in split_campaign(spec, 4)]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_partition_is_deterministic(self):
        spec = fake_spec(trials=4)
        assert split_campaign(spec, 3) == split_campaign(spec, 3)

    def test_clamps_to_trial_count(self):
        spec = fake_spec(trials=1)  # 2 trials total
        shards = split_campaign(spec, 8)
        assert len(shards) == 2
        assert all(s.trials == 1 for s in shards)

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ConfigError):
            split_campaign(fake_spec(), 0)

    def test_shard_validation(self):
        spec = fake_spec()
        with pytest.raises(ConfigError):
            ShardSpec(shard_id=2, num_shards=2, start=0, stop=1, spec=spec)
        with pytest.raises(ConfigError):
            ShardSpec(shard_id=0, num_shards=1, start=3, stop=3, spec=spec)

    def test_dict_round_trip_restores_spec(self):
        shard = split_campaign(fake_spec(trials=4), 3)[1]
        clone = ShardSpec.from_dict(
            json.loads(json.dumps(shard.as_dict())))
        assert clone == shard
        assert isinstance(clone.spec.workloads, tuple)
        assert clone.journal_name() == "shard_0001.jsonl"


#: One fixed campaign for the merge properties: 2 cells x 3 trials.
SPEC = fake_spec(trials=3)
ROWS = fake_rows(SPEC)
CANONICAL = [r.as_dict() for r in ROWS]


class TestMergeProperties:
    """Hypothesis: merge is invariant under partition, order, overlap."""

    @settings(deadline=None)
    @given(num_shards=st.integers(min_value=1, max_value=9),
           rerun=st.sets(st.integers(min_value=0, max_value=8)),
           rng=st.randoms(use_true_random=False))
    def test_any_partition_order_and_overlap_merges_canonically(
            self, num_shards, rerun, rng):
        shards = split_campaign(SPEC, num_shards)
        rows = [fake_result(t) for s in shards for t in s.trial_specs()]
        # Overlapping re-executions: some shards contribute their rows
        # twice (a lease lost after journaling, then reclaimed).
        for sid in rerun:
            if sid < len(shards):
                rows.extend(fake_result(t)
                            for t in shards[sid].trial_specs())
        rng.shuffle(rows)
        merged = merge_shard_results(SPEC, rows)
        assert [r.as_dict() for r in merged] == CANONICAL

    @settings(deadline=None, max_examples=25)
    @given(num_shards=st.integers(min_value=1, max_value=6),
           rng=st.randoms(use_true_random=False))
    def test_merged_journal_bytes_match_inline_journal(self, num_shards,
                                                       rng):
        shards = split_campaign(SPEC, num_shards)
        rows = [fake_result(t) for s in shards for t in s.trial_specs()]
        rng.shuffle(rows)
        with tempfile.TemporaryDirectory() as tmp:
            expected = journal_bytes(SPEC, ROWS,
                                     os.path.join(tmp, "inline.jsonl"))
            merged_path = os.path.join(tmp, "merged.jsonl")
            write_merged_journal(SPEC, rows, merged_path)
            with open(merged_path, "rb") as handle:
                assert handle.read() == expected

    @settings(deadline=None)
    @given(rng=st.randoms(use_true_random=False))
    def test_measured_row_beats_infra_duplicate_any_order(self, rng):
        trials = SPEC.trial_specs()
        rows = [fake_result(t) for t in trials]
        # A first lease died mid-shard and left infra rows; the
        # reclaiming worker measured the same trials.
        rows.extend(infra_placeholder(t, detail="first lease died")
                    for t in trials[:3])
        rng.shuffle(rows)
        merged = merge_shard_results(SPEC, rows)
        assert [r.as_dict() for r in merged] == CANONICAL
        assert not any(r.outcome == INFRA_ERROR for r in merged)

    def test_foreign_rows_are_dropped(self):
        stray = fake_result(fake_spec(trials=9).trial_specs()[-1])
        merged = merge_shard_results(SPEC, ROWS + [stray])
        assert [r.as_dict() for r in merged] == CANONICAL

    @settings(deadline=None)
    @given(outcomes=st.lists(st.sampled_from(_CYCLE + (INFRA_ERROR,)),
                             min_size=3, max_size=24),
           split_at=st.integers(min_value=0, max_value=3))
    def test_merge_cells_is_associative(self, outcomes, split_at):
        # Rows for one (workload, scheme) spread over three sites.
        sites = ("dest_reg", "src_reg", "rpt")
        rows = [TrialResult(workload="Triad", scheme="flame", index=i,
                            outcome=o, site=sites[i % len(sites)])
                for i, o in enumerate(outcomes)]
        cells = aggregate(rows)
        direct = merge_cells(cells, "Triad", "flame")
        partial = merge_cells(cells[:split_at], "Triad", "flame")
        regrouped = ([partial] if partial is not None else []) \
            + cells[split_at:]
        combined = merge_cells(regrouped, "Triad", "flame")
        assert combined.counts == direct.counts
        assert combined.trials == direct.trials
        assert combined.rates == direct.rates


class TestMergeHelpers:
    def test_canonical_order_indexes_every_trial(self):
        order = canonical_order(SPEC)
        assert sorted(order.values()) == list(range(len(ROWS)))

    def test_missing_keys_in_canonical_order(self):
        missing = missing_keys(SPEC, ROWS[:2] + ROWS[4:])
        assert missing == [r.key for r in ROWS[2:4]]

    def test_infra_placeholder_carries_detail_and_attempts(self):
        trial = SPEC.trial_specs()[0]
        row = infra_placeholder(trial, detail="shard 0 quarantined",
                                attempts=3)
        assert row.key == trial.key
        assert row.outcome == INFRA_ERROR
        assert row.attempts == 3
        assert "quarantined" in row.detail

    def test_load_shard_results_skips_torn_tail(self, tmp_path):
        shards = split_campaign(SPEC, 2)
        for shard in shards:
            journal = CampaignJournal(shard.journal_path(str(tmp_path)))
            journal.write_header(SPEC)
            for trial in shard.trial_specs():
                journal.append(fake_result(trial))
            journal.close()
        # Tear the final line of shard 1 mid-record.
        torn = shards[1].journal_path(str(tmp_path))
        with open(torn, "rb+") as handle:
            data = handle.read()
            handle.seek(len(data) - 17)
            handle.truncate()
        rows = load_shard_results(SPEC, str(tmp_path), shards)
        assert len(rows) == len(ROWS) - 1
        merged = merge_shard_results(SPEC, rows)
        assert [r.key for r in merged] == \
            [r.key for r in ROWS if r.key != ROWS[-1].key]
