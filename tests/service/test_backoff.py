"""Capped exponential backoff with deterministic seeded jitter."""

import pytest

from repro.service.backoff import backoff_delay


class TestBackoffDelay:
    def test_deterministic_for_same_arguments(self):
        args = dict(base_s=0.5, cap_s=30.0, seed=42, key=("shard", 3))
        assert backoff_delay(2, **args) == backoff_delay(2, **args)

    def test_jitter_stays_within_half_to_full_base(self):
        for attempt in range(1, 10):
            base = min(30.0, 0.5 * 2 ** (attempt - 1))
            delay = backoff_delay(attempt, base_s=0.5, cap_s=30.0,
                                  seed=1, key=("t",))
            assert 0.5 * base <= delay <= base

    def test_envelope_doubles_until_cap(self):
        # The jitter-free envelope is min(cap, base * 2^(attempt-1));
        # sample widely to confirm growth then saturation.
        caps = [min(30.0, 0.5 * 2 ** (a - 1)) for a in range(1, 12)]
        delays = [backoff_delay(a, base_s=0.5, cap_s=30.0, seed=9,
                                key=()) for a in range(1, 12)]
        for delay, cap in zip(delays, caps):
            assert delay <= cap

    def test_never_exceeds_cap_even_for_huge_attempts(self):
        # 2**499 would overflow a float multiply if the cap were
        # applied after exponentiation carelessly.
        assert backoff_delay(500, base_s=1.0, cap_s=5.0, seed=0,
                             key=()) <= 5.0

    def test_distinct_keys_desynchronise(self):
        delays = {backoff_delay(3, base_s=0.5, cap_s=30.0, seed=7,
                                key=("shard", sid)) for sid in range(8)}
        assert len(delays) > 1

    def test_distinct_seeds_desynchronise(self):
        assert backoff_delay(3, base_s=0.5, cap_s=30.0, seed=1, key=()) \
            != backoff_delay(3, base_s=0.5, cap_s=30.0, seed=2, key=())

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError):
            backoff_delay(0)

    def test_zero_base_disables_backoff(self):
        assert backoff_delay(5, base_s=0.0) == 0.0
