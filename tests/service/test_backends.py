"""Launcher backends: byte-equivalence to the inline oracle, quarantine.

The acceptance bar: for the same spec+seed, the merged journal from any
backend — inline, subprocess pool, HTTP polling workers — is
byte-identical to the journal an uninterrupted single-process
``run_campaign`` writes.
"""

import json

import pytest

from repro.core.campaign import (CampaignJournal, CampaignSpec,
                                 INFRA_ERROR, MASKED, TrialResult)
from repro.errors import ConfigError
from repro.harness.campaign import run_campaign, write_aggregates
from repro.service.backends import (BACKENDS, BackendOptions, HttpBackend,
                                    InlineBackend, SubprocessBackend,
                                    backend_by_name)
from repro.service.runner import default_shard_dir, run_sharded_campaign
from repro.service.shard import split_campaign


def real_spec():
    return CampaignSpec(workloads=("Triad",),
                        schemes=("baseline", "flame"), trials=2, seed=1,
                        scale="tiny")


def fake_spec(trials=3):
    return CampaignSpec(workloads=("Triad",), schemes=("baseline",),
                        trials=trials, seed=9, scale="tiny")


def fake_execute(trial):
    return TrialResult(workload=trial.workload, scheme=trial.scheme,
                       index=trial.index, outcome=MASKED, site=trial.site,
                       cycles=50 + trial.index)


def read_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    """Journal bytes + aggregates of the single-process reference run."""
    tmp = tmp_path_factory.mktemp("oracle")
    journal = str(tmp / "inline.jsonl")
    report = run_campaign(real_spec(), workers=1, journal_path=journal)
    aggregates = str(tmp / "agg.json")
    write_aggregates(report, aggregates)
    return {"journal": read_bytes(journal),
            "aggregates": read_bytes(aggregates)}


def run_backend(backend, tmp_path, **kwargs):
    journal = str(tmp_path / "merged.jsonl")
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("poll_interval_s", 0.1)
    kwargs.setdefault("heartbeat_interval_s", 0.2)
    report = run_sharded_campaign(real_spec(), backend=backend,
                                  journal_path=journal,
                                  shard_dir=str(tmp_path / "shards"),
                                  **kwargs)
    return report, journal


class TestRegistry:
    def test_backends_by_name(self):
        assert isinstance(backend_by_name("inline"), InlineBackend)
        assert isinstance(backend_by_name("subprocess"),
                          SubprocessBackend)
        assert isinstance(backend_by_name("http"), HttpBackend)
        assert set(BACKENDS) == {"inline", "subprocess", "http"}

    def test_unknown_backend_lists_choices(self):
        with pytest.raises(ConfigError, match="inline.*subprocess"):
            backend_by_name("slurm")


class TestInlineBackend:
    def test_fake_campaign_merges_to_canonical_journal(self, tmp_path):
        spec = fake_spec()
        journal = str(tmp_path / "merged.jsonl")
        report = run_sharded_campaign(
            spec, shards=3, backend="inline", workers=1,
            journal_path=journal, shard_dir=str(tmp_path / "shards"),
            _backend_options=BackendOptions(execute=fake_execute))
        assert report.complete
        assert report.infra_failures == 0
        expected_path = str(tmp_path / "expected.jsonl")
        expected = CampaignJournal(expected_path)
        expected.write_header(spec)
        for trial in spec.trial_specs():
            expected.append(fake_execute(trial))
        expected.close()
        assert read_bytes(journal) == read_bytes(expected_path)

    def test_real_campaign_matches_single_process_run(self, tmp_path,
                                                      oracle):
        report, journal = run_backend("inline", tmp_path, workers=1)
        assert report.complete
        assert read_bytes(journal) == oracle["journal"]
        aggregates = str(tmp_path / "agg.json")
        write_aggregates(report, aggregates)
        assert read_bytes(aggregates) == oracle["aggregates"]

    def test_poison_shard_quarantines_and_terminates(self, tmp_path):
        spec = fake_spec()
        poisoned = {t.key for t in split_campaign(spec, 3)[1].trial_specs()}

        def execute(trial):
            if trial.key in poisoned:
                raise RuntimeError("poisoned shard")
            return fake_execute(trial)

        report = run_sharded_campaign(
            spec, shards=3, backend="inline", workers=1,
            journal_path=str(tmp_path / "merged.jsonl"),
            shard_dir=str(tmp_path / "shards"),
            fail_limit=2, backoff_base_s=0.001,
            _backend_options=BackendOptions(execute=execute))
        assert report.complete  # every key present, degraded not dropped
        assert report.infra_failures == len(poisoned)
        infra = [r for r in report.results if r.outcome == INFRA_ERROR]
        assert {r.key for r in infra} == poisoned
        for row in infra:
            assert "quarantined" in row.detail
            assert "RuntimeError" in row.detail
            assert row.attempts == 2  # one per failed lease

    def test_completed_campaign_short_circuits(self, tmp_path):
        spec = fake_spec()
        journal = str(tmp_path / "merged.jsonl")
        options = BackendOptions(execute=fake_execute)
        run_sharded_campaign(spec, shards=2, backend="inline", workers=1,
                             journal_path=journal,
                             shard_dir=str(tmp_path / "shards"),
                             _backend_options=options)

        def explode(trial):
            raise AssertionError("no trial should re-run")

        report = run_sharded_campaign(
            spec, shards=2, backend="inline", workers=1,
            journal_path=journal, shard_dir=str(tmp_path / "shards"),
            _backend_options=BackendOptions(execute=explode))
        assert report.complete
        assert len(report.results) == len(spec.trial_specs())

    def test_metrics_report_shards_done(self, tmp_path):
        spec = fake_spec()
        metrics = tmp_path / "metrics.jsonl"
        run_sharded_campaign(
            spec, shards=2, backend="inline", workers=1,
            journal_path=str(tmp_path / "merged.jsonl"),
            shard_dir=str(tmp_path / "shards"),
            metrics_path=str(metrics),
            _backend_options=BackendOptions(execute=fake_execute))
        records = [json.loads(line)
                   for line in metrics.read_text().splitlines()]
        final = records[-1]
        assert final["shards_done"] == 2
        assert final["completed"] == len(spec.trial_specs())
        assert "shard_staleness_s" in final


class TestSubprocessBackend:
    def test_real_campaign_matches_single_process_run(self, tmp_path,
                                                      oracle):
        report, journal = run_backend("subprocess", tmp_path, workers=2)
        assert report.complete
        assert report.infra_failures == 0
        assert read_bytes(journal) == oracle["journal"]

    def test_shared_goldens_reused_across_workers(self, tmp_path, oracle):
        """Every shard worker is a fresh process; with the manifest
        handshake active each adopts its cell's golden from shared
        memory instead of re-simulating it — visible as
        ``golden_shared_hits`` in the per-shard heartbeats — while the
        merged journal stays byte-identical to the workers=1 oracle."""
        report, journal = run_backend("subprocess", tmp_path,
                                      shards=4, workers=2)
        assert report.complete
        assert read_bytes(journal) == oracle["journal"]
        shard_dir = tmp_path / "shards"
        heartbeats = sorted(shard_dir.glob("shard_*.heartbeat.jsonl"))
        assert heartbeats  # subprocess workers emit per-shard metrics
        hits = 0
        for path in heartbeats:
            final = json.loads(path.read_text().splitlines()[-1])
            hits += final["golden_shared_hits"]
        # Four shards, four fresh worker processes, one golden cell
        # each: all of them must have adopted rather than re-derived.
        assert hits >= len(heartbeats)


class TestHttpBackend:
    def test_real_campaign_matches_single_process_run(self, tmp_path,
                                                      oracle):
        report, journal = run_backend("http", tmp_path, workers=2)
        assert report.complete
        assert report.infra_failures == 0
        assert read_bytes(journal) == oracle["journal"]


class TestShardDirDefaults:
    def test_default_shard_dir_sits_next_to_the_journal(self):
        assert default_shard_dir("/x/j.jsonl") == "/x/j.jsonl.shards"
