"""Distributed campaign service tests."""
