"""Coordinator state machine: leases, liveness, quarantine, resume.

Time is injected, so lease TTLs, heartbeat windows, and backoff
schedules are exercised without sleeping; shard journals are fabricated
on disk, so completion verification runs against real files.
"""

import json
import os

import pytest

from repro.core.campaign import CampaignJournal, CampaignSpec, MASKED, \
    TrialResult
from repro.errors import ConfigError
from repro.service.backoff import backoff_delay
from repro.service.coordinator import (Coordinator, DONE, LEASED, PENDING,
                                       QUARANTINED)
from repro.service.shard import ShardSpec


def fake_spec(trials=4, seed=3):
    return CampaignSpec(workloads=("Triad",), schemes=("baseline",),
                        trials=trials, seed=seed, scale="tiny")


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make(tmp_path, trials=4, shards=2, **kwargs):
    kwargs.setdefault("lease_ttl_s", 60.0)
    kwargs.setdefault("heartbeat_timeout_s", 5.0)
    kwargs.setdefault("fail_limit", 3)
    clock = kwargs.pop("clock", FakeClock())
    coordinator = Coordinator(fake_spec(trials=trials),
                              str(tmp_path / "shards"), shards,
                              clock=clock, **kwargs)
    return coordinator, clock


def fill_shard(coordinator, lease, keep_last=0):
    """Write the leased shard's journal (all rows but ``keep_last``)."""
    shard = ShardSpec.from_dict(lease["shard"])
    journal = CampaignJournal(lease["journal_path"])
    if not journal.has_header():
        journal.write_header(coordinator.spec)
    trials = shard.trial_specs()
    for trial in trials[:len(trials) - keep_last]:
        journal.append(TrialResult(workload=trial.workload,
                                   scheme=trial.scheme, index=trial.index,
                                   outcome=MASKED, site=trial.site))
    journal.close()


class TestLeaseLifecycle:
    def test_leases_grant_lowest_pending_shard(self, tmp_path):
        coordinator, _ = make(tmp_path)
        first = coordinator.lease("w0")
        second = coordinator.lease("w1")
        assert first["shard"]["shard_id"] == 0
        assert second["shard"]["shard_id"] == 1
        assert coordinator.lease("w2") is None  # everything leased
        assert coordinator.state == {0: LEASED, 1: LEASED}
        assert first["attempt"] == 1

    def test_complete_verifies_shard_journal(self, tmp_path):
        coordinator, _ = make(tmp_path)
        lease = coordinator.lease("w0")
        fill_shard(coordinator, lease)
        assert coordinator.complete(lease["lease_id"])
        assert coordinator.state[0] == DONE
        assert not coordinator.finished  # shard 1 still pending

    def test_incomplete_completion_claim_is_a_failure(self, tmp_path):
        coordinator, _ = make(tmp_path)
        lease = coordinator.lease("w0")
        fill_shard(coordinator, lease, keep_last=1)
        assert not coordinator.complete(lease["lease_id"])
        assert coordinator.state[0] == PENDING
        assert coordinator.failures[0] == 1

    def test_fail_requeues_with_backoff_window(self, tmp_path):
        coordinator, clock = make(tmp_path, backoff_base_s=2.0,
                                  backoff_cap_s=30.0)
        lease = coordinator.lease("w0")
        coordinator.fail(lease["lease_id"], "worker crashed")
        # Shard 0 sits out its backoff window; shard 1 is still ready.
        assert coordinator.lease("w1")["shard"]["shard_id"] == 1
        assert coordinator.lease("w2") is None
        delay = coordinator.next_ready_delay()
        assert delay == pytest.approx(backoff_delay(
            1, base_s=2.0, cap_s=30.0, seed=coordinator.spec.seed,
            key=("shard", 0)))
        clock.advance(delay + 0.001)
        retry = coordinator.lease("w2")
        assert retry["shard"]["shard_id"] == 0
        assert retry["attempt"] == 2

    def test_fail_unknown_lease_is_a_no_op(self, tmp_path):
        coordinator, _ = make(tmp_path)
        coordinator.fail("L999999", "stale")
        assert coordinator.failures == {0: 0, 1: 0}

    def test_finished_when_all_done(self, tmp_path):
        coordinator, _ = make(tmp_path)
        for worker in ("w0", "w1"):
            lease = coordinator.lease(worker)
            fill_shard(coordinator, lease)
            assert coordinator.complete(lease["lease_id"])
        assert coordinator.finished
        assert coordinator.quarantined == []
        assert coordinator.next_ready_delay() is None


class TestLiveness:
    def test_missed_heartbeats_expire_the_lease(self, tmp_path):
        coordinator, clock = make(tmp_path, heartbeat_timeout_s=5.0,
                                  backoff_base_s=0.0)
        lease = coordinator.lease("w0")
        clock.advance(6.0)
        expired = coordinator.expire_stale()
        assert expired == [lease["lease_id"]]
        assert coordinator.state[0] == PENDING
        assert coordinator.failures[0] == 1
        assert not coordinator.heartbeat(lease["lease_id"])  # revoked

    def test_heartbeats_keep_the_lease_alive(self, tmp_path):
        coordinator, clock = make(tmp_path, heartbeat_timeout_s=5.0)
        lease = coordinator.lease("w0")
        for _ in range(4):
            clock.advance(3.0)
            assert coordinator.heartbeat(lease["lease_id"])
        assert coordinator.expire_stale() == []
        assert coordinator.state[0] == LEASED

    def test_lease_ttl_expires_even_a_beating_worker(self, tmp_path):
        coordinator, clock = make(tmp_path, lease_ttl_s=60.0,
                                  heartbeat_timeout_s=5.0,
                                  backoff_base_s=0.0)
        lease = coordinator.lease("w0")
        for _ in range(16):  # 64s of dutiful heartbeats
            clock.advance(4.0)
            coordinator.heartbeat(lease["lease_id"])
        assert coordinator.expire_stale() == [lease["lease_id"]]
        assert "TTL" in coordinator.journal.load()[-1]["reason"]

    def test_lease_itself_expires_stale_predecessors(self, tmp_path):
        coordinator, clock = make(tmp_path, shards=1,
                                  heartbeat_timeout_s=5.0,
                                  backoff_base_s=0.0)
        coordinator.lease("w0")
        clock.advance(10.0)
        release = coordinator.lease("w1")  # reclaims without expire_stale
        assert release is not None
        assert release["attempt"] == 2


class TestQuarantine:
    def test_quarantined_after_fail_limit(self, tmp_path):
        coordinator, clock = make(tmp_path, shards=1, fail_limit=3,
                                  backoff_base_s=0.01)
        for attempt in range(1, 4):
            clock.advance(1.0)
            lease = coordinator.lease(f"w{attempt}")
            assert lease["attempt"] == attempt
            coordinator.fail(lease["lease_id"], "worker crashed")
        assert coordinator.state[0] == QUARANTINED
        assert coordinator.quarantined == [0]
        assert "3 failed leases" in coordinator.quarantine_reason[0]
        assert coordinator.finished  # terminates, never hangs
        clock.advance(100.0)
        assert coordinator.lease("w9") is None

    def test_abandon_pending_quarantines_everything_open(self, tmp_path):
        coordinator, _ = make(tmp_path, shards=2, fail_limit=1)
        coordinator.lease("w0")  # shard 0 leased, shard 1 pending
        abandoned = coordinator.abandon_pending("no workers left")
        assert coordinator.state == {0: QUARANTINED, 1: QUARANTINED}
        assert abandoned == [1]  # shard 0 went through fail()
        assert coordinator.finished

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ConfigError):
            make(tmp_path, fail_limit=0)
        with pytest.raises(ConfigError):
            make(tmp_path, lease_ttl_s=0.0)
        with pytest.raises(ConfigError):
            make(tmp_path, heartbeat_timeout_s=-1.0)


class TestCrashResume:
    def test_resume_restores_done_failures_and_lease_counter(
            self, tmp_path):
        coordinator, _ = make(tmp_path)
        done = coordinator.lease("w0")
        fill_shard(coordinator, done)
        coordinator.complete(done["lease_id"])
        failed = coordinator.lease("w1")
        coordinator.fail(failed["lease_id"], "crashed")
        coordinator.close()  # simulated coordinator SIGKILL + restart

        revived, clock = make(tmp_path)
        clock.advance(1000.0)  # past any backoff window
        assert revived.state[0] == DONE
        assert revived.state[1] == PENDING
        assert revived.failures == {0: 0, 1: 1}
        lease = revived.lease("w2")
        assert lease["shard"]["shard_id"] == 1
        # Lease ids keep increasing across the restart.
        assert int(lease["lease_id"][1:]) > int(failed["lease_id"][1:])

    def test_open_lease_with_complete_journal_recovers_as_done(
            self, tmp_path):
        coordinator, _ = make(tmp_path)
        lease = coordinator.lease("w0")
        fill_shard(coordinator, lease)  # worker finished...
        coordinator.close()  # ...but the coordinator died unnotified

        revived, _ = make(tmp_path)
        assert revived.state[0] == DONE
        assert revived.failures[0] == 0
        events = revived.journal.load()
        assert any(e.get("type") == "done" and e.get("recovered")
                   for e in events)

    def test_open_lease_with_partial_journal_requeues_without_blame(
            self, tmp_path):
        coordinator, _ = make(tmp_path)
        lease = coordinator.lease("w0")
        fill_shard(coordinator, lease, keep_last=1)
        coordinator.close()

        revived, _ = make(tmp_path)
        assert revived.state[0] == PENDING
        # The coordinator died, not the shard: no failure charged.
        assert revived.failures[0] == 0
        assert revived.lease("w1")["shard"]["shard_id"] == 0

    def test_resume_preserves_quarantine(self, tmp_path):
        coordinator, _ = make(tmp_path, shards=1, fail_limit=1)
        lease = coordinator.lease("w0")
        coordinator.fail(lease["lease_id"], "poison")
        assert coordinator.state[0] == QUARANTINED
        coordinator.close()

        revived, _ = make(tmp_path, shards=1, fail_limit=1)
        assert revived.state[0] == QUARANTINED
        assert "poison" in revived.quarantine_reason[0]
        assert revived.finished

    def test_torn_journal_tail_is_repaired_on_resume(self, tmp_path):
        coordinator, _ = make(tmp_path)
        lease = coordinator.lease("w0")
        coordinator.fail(lease["lease_id"], "crashed")
        coordinator.close()
        with open(coordinator.journal.path, "a") as handle:
            handle.write('{"type": "lease", "shard')  # torn mid-write

        revived, _ = make(tmp_path)
        assert revived.failures[0] == 1
        with open(revived.journal.path, "rb") as handle:
            assert handle.read().endswith(b"\n")

    def test_refuses_foreign_campaign_journal(self, tmp_path):
        coordinator, _ = make(tmp_path, trials=4)
        coordinator.close()
        with pytest.raises(ConfigError, match="belongs to campaign"):
            Coordinator(fake_spec(trials=5), str(tmp_path / "shards"), 2)

    def test_refuses_mismatched_shard_count(self, tmp_path):
        coordinator, _ = make(tmp_path, shards=2)
        coordinator.close()
        with pytest.raises(ConfigError, match="--shards"):
            Coordinator(fake_spec(), str(tmp_path / "shards"), 4)


class TestStatus:
    def test_status_snapshot(self, tmp_path):
        coordinator, clock = make(tmp_path, shards=2, fail_limit=1)
        lease = coordinator.lease("w0")
        clock.advance(2.0)
        coordinator.heartbeat(lease["lease_id"])
        clock.advance(1.0)
        status = coordinator.status()
        assert status["campaign_id"] == coordinator.spec.campaign_id()
        assert status["num_shards"] == 2
        assert not status["finished"]
        assert status["counts"] == {LEASED: 1, PENDING: 1}
        entry = status["shards"]["0"]
        assert entry["worker"] == "w0"
        assert entry["lease_id"] == lease["lease_id"]
        assert entry["heartbeat_age_s"] == pytest.approx(1.0)

    def test_heartbeat_path_is_per_shard(self, tmp_path):
        coordinator, _ = make(tmp_path)
        assert coordinator.heartbeat_path(1).endswith(
            "shard_0001.heartbeat.jsonl")
        lease = coordinator.lease("w0")
        assert lease["heartbeat_path"] == coordinator.heartbeat_path(0)
