"""Service metrics hub: transitions, journal tailing, /v1/metrics."""

import urllib.request

from repro.core.campaign import CampaignSpec, MASKED, SDC, TrialResult
from repro.obs.metrics import (MetricsRegistry, parse_prom_text,
                               trial_counts, validate_prom_text)
from repro.service.coordinator import Coordinator
from repro.service.metrics import ServiceMetrics


def fake_spec(trials=2):
    return CampaignSpec(workloads=("Triad",), schemes=("baseline",),
                        trials=trials, seed=7, scale="tiny")


def result(index, outcome=MASKED):
    return TrialResult(workload="Triad", scheme="baseline", index=index,
                       outcome=outcome, site="dest_reg", cycles=100,
                       wall_time_s=0.01)


class TestHub:
    def test_transitions_and_state_gauges(self, tmp_path):
        coordinator = Coordinator(fake_spec(), str(tmp_path / "s"), 2)
        hub = ServiceMetrics(coordinator)
        coordinator.on_event = hub.on_transition
        try:
            lease = coordinator.lease("w0")
            coordinator.fail(lease["lease_id"], "chaos")
            hub.refresh()
            families, _ = parse_prom_text(hub.render())
            events = {l["event"]: v for _, l, v in
                      families["repro_shard_transitions_total"]["samples"]}
            assert events == {"lease": 1, "failed": 1}
            states = {l["state"]: v for _, l, v in
                      families["repro_shards"]["samples"]}
            assert states["pending"] == 2  # failed shard requeued
            assert states["done"] == 0
        finally:
            coordinator.close()

    def test_journal_tailing_counts_each_row_once(self, tmp_path):
        from repro.core.campaign import CampaignJournal

        coordinator = Coordinator(fake_spec(), str(tmp_path / "s"), 1)
        hub = ServiceMetrics(coordinator)
        try:
            lease = coordinator.lease("w0")
            journal = CampaignJournal(lease["journal_path"])
            journal.write_header(coordinator.spec)
            journal.append(result(0))
            hub.refresh()
            hub.refresh()  # idempotent: offsets + key dedupe
            journal.append(result(1, outcome=SDC))
            journal.close()
            coordinator.complete(lease["lease_id"])
            hub.refresh()
            counts = trial_counts(hub.registry)
            assert counts[("Triad", "baseline", "dest_reg")] == {
                "masked": 1, "sdc": 1}
        finally:
            coordinator.close()

    def test_ingest_results_dedupes_against_tail(self, tmp_path):
        coordinator = Coordinator(fake_spec(), str(tmp_path / "s"), 1)
        hub = ServiceMetrics(coordinator)
        try:
            rows = [result(0), result(1)]
            hub.ingest_results(rows)
            hub.ingest_results(rows)  # same keys: no double counting
            counts = trial_counts(hub.registry)
            assert counts[("Triad", "baseline", "dest_reg")] == {
                "masked": 2}
        finally:
            coordinator.close()

    def test_worker_snapshot_becomes_shard_gauges(self, tmp_path):
        coordinator = Coordinator(fake_spec(), str(tmp_path / "s"), 1)
        hub = ServiceMetrics(coordinator)
        try:
            hub.ingest_worker_snapshot(0, {"completed": 5,
                                           "trials_per_sec": 2.5,
                                           "elapsed_s": 2.0,
                                           "worker_id": "w0"})
            families, _ = parse_prom_text(hub.render())
            completed = families["repro_shard_completed_trials"]["samples"]
            assert completed == [("repro_shard_completed_trials",
                                  {"shard": "0"}, 5.0)]
        finally:
            coordinator.close()

    def test_render_is_always_valid_exposition(self, tmp_path):
        coordinator = Coordinator(fake_spec(), str(tmp_path / "s"), 2)
        hub = ServiceMetrics(coordinator)
        try:
            hub.on_transition("lease", 0)
            hub.observe_http("/v1/lease", 200, 0.01)
            hub.ingest_results([result(0)])
            hub.refresh()
            assert validate_prom_text(hub.render()) == []
        finally:
            coordinator.close()


class TestEndToEnd:
    def test_scrape_during_and_after_sharded_campaign(self, tmp_path):
        """The acceptance criterion: a live /v1/metrics scrape validates
        cleanly and the final verdict counters equal the merged journal
        row-for-row."""
        import socket

        from repro.core.campaign import CampaignJournal
        from repro.service.runner import run_sharded_campaign

        spec = CampaignSpec(workloads=("Triad",),
                            schemes=("baseline", "flame"), trials=2,
                            seed=3, scale="tiny")
        path = str(tmp_path / "journal.jsonl")
        registry = MetricsRegistry()
        scrapes = []
        with socket.socket() as sock:  # pick a free localhost port
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]

        def snapshot_hook(record):
            # Runs on the heartbeat cadence while shards execute: scrape
            # the coordinator API mid-campaign (it may not be up yet on
            # the first ticks, or already down on the last one).
            try:
                url = f"http://127.0.0.1:{port}/v1/metrics"
                with urllib.request.urlopen(url, timeout=5) as resp:
                    scrapes.append(resp.read().decode())
            except OSError:
                pass

        report = run_sharded_campaign(
            spec, shards=2, backend="http", workers=1,
            journal_path=path, heartbeat_interval_s=0.05,
            on_snapshot=snapshot_hook, registry=registry,
            http_port=port)
        assert report.complete

        # Live scrapes (if any landed while the server was up) validate.
        for text in scrapes:
            assert validate_prom_text(text) == []

        # Final registry counters == merged journal rows, cell by cell.
        rows = CampaignJournal(path).load(spec)
        assert len(rows) == 4
        expected = {}
        for row in rows:
            cell = expected.setdefault(
                (row.workload, row.scheme, row.site), {})
            cell[row.outcome] = cell.get(row.outcome, 0) + 1
        assert trial_counts(registry) == expected
        from repro.obs.metrics import render_prom

        assert validate_prom_text(render_prom(registry)) == []
