"""HTTP coordinator API: JSON round-trips and the polling worker loop."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.campaign import CampaignJournal, CampaignSpec, MASKED, \
    TrialResult
from repro.service.api import (CoordinatorApiError, CoordinatorClient,
                               CoordinatorServer, CoordinatorUnreachable,
                               GET_ENDPOINTS, POST_ENDPOINTS,
                               run_polling_worker)
from repro.service.coordinator import Coordinator, DONE
from repro.service.shard import ShardSpec


def fake_spec(trials=2, schemes=("baseline",)):
    return CampaignSpec(workloads=("Triad",), schemes=schemes,
                        trials=trials, seed=11, scale="tiny")


@pytest.fixture
def served(tmp_path):
    coordinator = Coordinator(fake_spec(), str(tmp_path / "shards"), 2,
                              heartbeat_timeout_s=30.0)
    server = CoordinatorServer(coordinator).start()
    try:
        yield coordinator, server, CoordinatorClient(server.url)
    finally:
        server.stop()
        coordinator.close()


def fill_shard(coordinator, lease):
    shard = ShardSpec.from_dict(lease["shard"])
    journal = CampaignJournal(lease["journal_path"])
    journal.write_header(coordinator.spec)
    for trial in shard.trial_specs():
        journal.append(TrialResult(workload=trial.workload,
                                   scheme=trial.scheme, index=trial.index,
                                   outcome=MASKED, site=trial.site))
    journal.close()


class TestHttpRoundTrips:
    def test_lease_heartbeat_complete_over_http(self, served):
        coordinator, _, client = served
        reply = client.lease("http-w0")
        lease = reply["lease"]
        assert lease["shard"]["shard_id"] == 0
        assert not reply["finished"]
        assert client.heartbeat(lease["lease_id"])
        fill_shard(coordinator, lease)
        assert client.complete(lease["lease_id"])
        assert coordinator.state[0] == DONE
        status = client.status()
        assert status["counts"][DONE] == 1

    def test_fail_over_http_requeues_the_shard(self, served):
        coordinator, _, client = served
        lease = client.lease("http-w0")["lease"]
        client.fail(lease["lease_id"], "chaos")
        assert coordinator.failures[0] == 1
        assert not client.heartbeat(lease["lease_id"])  # revoked

    def test_lease_reply_carries_backoff_hint(self, served):
        coordinator, _, client = served
        for worker in ("w0", "w1"):
            lease = client.lease(worker)["lease"]
            client.fail(lease["lease_id"], "chaos")
        reply = client.lease("w2")
        if reply["lease"] is None:  # both shards inside backoff windows
            assert reply["retry_after_s"] > 0

    def test_unreachable_coordinator_raises_after_retries(self):
        client = CoordinatorClient("http://127.0.0.1:1", timeout_s=0.2,
                                   retries=1, retry_delay_s=0.01)
        with pytest.raises(CoordinatorUnreachable):
            client.status()


class TestErrorBodies:
    def _get(self, url):
        try:
            with urllib.request.urlopen(url, timeout=5) as resp:
                return resp.status, resp.read().decode()
        except urllib.error.HTTPError as err:
            return err.code, err.read().decode()

    def test_unknown_path_gets_structured_404(self, served):
        _, server, _ = served
        code, body = self._get(f"{server.url}/v1/nonsense")
        assert code == 404
        payload = json.loads(body)
        assert payload["error"] == "not_found"
        assert payload["path"] == "/v1/nonsense"
        assert payload["method"] == "GET"
        # The hint lists the endpoints valid for the request's method.
        assert set(payload["endpoints"]) == set(GET_ENDPOINTS)
        assert not set(payload["endpoints"]) & set(POST_ENDPOINTS)

    def test_post_to_unknown_path_gets_404_before_body_parse(self,
                                                             served):
        _, server, _ = served
        req = urllib.request.Request(f"{server.url}/v1/nope",
                                     data=b"this is not json",
                                     method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=5)
        assert err.value.code == 404
        assert json.loads(err.value.read())["error"] == "not_found"

    def test_malformed_json_gets_structured_400(self, served):
        _, server, _ = served
        req = urllib.request.Request(f"{server.url}/v1/lease",
                                     data=b"{not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=5)
        assert err.value.code == 400
        payload = json.loads(err.value.read())
        assert payload["error"] == "bad_json"
        assert payload["path"] == "/v1/lease"

    def test_client_raises_api_error_without_burning_retries(self,
                                                             served):
        _, server, _ = served
        client = CoordinatorClient(server.url, retries=50,
                                   retry_delay_s=10.0)  # would take ages
        with pytest.raises(CoordinatorApiError) as err:
            client._call("/v1/bogus")
        assert err.value.status == 404
        assert err.value.body["error"] == "not_found"

    def test_metrics_endpoint_serves_valid_exposition(self, served):
        _, server, client = served
        client.lease("w0")
        code, body = self._get(f"{server.url}/v1/metrics")
        assert code == 200
        from repro.obs.metrics import validate_prom_text

        assert validate_prom_text(body) == []
        assert "repro_shard_transitions_total" in body
        # the scrape itself is instrumented on the next scrape
        _, body2 = self._get(f"{server.url}/v1/metrics")
        assert 'repro_http_requests_total{code="200"' in body2 \
            or "repro_http_requests_total" in body2

    def test_client_metrics_text_helper(self, served):
        _, server, client = served
        text = client.metrics_text()
        from repro.obs.metrics import validate_prom_text

        assert validate_prom_text(text) == []


class TestPollingWorker:
    def test_polling_worker_drains_a_real_campaign(self, tmp_path):
        # One real (tiny) trial per shard; the worker loop runs in this
        # process and must exit 0 once the coordinator says finished.
        spec = fake_spec(trials=1)
        coordinator = Coordinator(spec, str(tmp_path / "shards"), 1,
                                  heartbeat_timeout_s=30.0)
        server = CoordinatorServer(coordinator).start()
        try:
            code = run_polling_worker(server.url, "poller-0",
                                      poll_interval_s=0.05,
                                      heartbeat_interval_s=0.1)
        finally:
            server.stop()
            coordinator.close()
        assert code == 0
        assert coordinator.finished
        assert coordinator.state[0] == DONE
