"""HTTP coordinator API: JSON round-trips and the polling worker loop."""

import pytest

from repro.core.campaign import CampaignJournal, CampaignSpec, MASKED, \
    TrialResult
from repro.service.api import (CoordinatorClient, CoordinatorServer,
                               CoordinatorUnreachable, run_polling_worker)
from repro.service.coordinator import Coordinator, DONE
from repro.service.shard import ShardSpec


def fake_spec(trials=2, schemes=("baseline",)):
    return CampaignSpec(workloads=("Triad",), schemes=schemes,
                        trials=trials, seed=11, scale="tiny")


@pytest.fixture
def served(tmp_path):
    coordinator = Coordinator(fake_spec(), str(tmp_path / "shards"), 2,
                              heartbeat_timeout_s=30.0)
    server = CoordinatorServer(coordinator).start()
    try:
        yield coordinator, server, CoordinatorClient(server.url)
    finally:
        server.stop()
        coordinator.close()


def fill_shard(coordinator, lease):
    shard = ShardSpec.from_dict(lease["shard"])
    journal = CampaignJournal(lease["journal_path"])
    journal.write_header(coordinator.spec)
    for trial in shard.trial_specs():
        journal.append(TrialResult(workload=trial.workload,
                                   scheme=trial.scheme, index=trial.index,
                                   outcome=MASKED, site=trial.site))
    journal.close()


class TestHttpRoundTrips:
    def test_lease_heartbeat_complete_over_http(self, served):
        coordinator, _, client = served
        reply = client.lease("http-w0")
        lease = reply["lease"]
        assert lease["shard"]["shard_id"] == 0
        assert not reply["finished"]
        assert client.heartbeat(lease["lease_id"])
        fill_shard(coordinator, lease)
        assert client.complete(lease["lease_id"])
        assert coordinator.state[0] == DONE
        status = client.status()
        assert status["counts"][DONE] == 1

    def test_fail_over_http_requeues_the_shard(self, served):
        coordinator, _, client = served
        lease = client.lease("http-w0")["lease"]
        client.fail(lease["lease_id"], "chaos")
        assert coordinator.failures[0] == 1
        assert not client.heartbeat(lease["lease_id"])  # revoked

    def test_lease_reply_carries_backoff_hint(self, served):
        coordinator, _, client = served
        for worker in ("w0", "w1"):
            lease = client.lease(worker)["lease"]
            client.fail(lease["lease_id"], "chaos")
        reply = client.lease("w2")
        if reply["lease"] is None:  # both shards inside backoff windows
            assert reply["retry_after_s"] > 0

    def test_unreachable_coordinator_raises_after_retries(self):
        client = CoordinatorClient("http://127.0.0.1:1", timeout_s=0.2,
                                   retries=1, retry_delay_s=0.01)
        with pytest.raises(CoordinatorUnreachable):
            client.status()


class TestPollingWorker:
    def test_polling_worker_drains_a_real_campaign(self, tmp_path):
        # One real (tiny) trial per shard; the worker loop runs in this
        # process and must exit 0 once the coordinator says finished.
        spec = fake_spec(trials=1)
        coordinator = Coordinator(spec, str(tmp_path / "shards"), 1,
                                  heartbeat_timeout_s=30.0)
        server = CoordinatorServer(coordinator).start()
        try:
            code = run_polling_worker(server.url, "poller-0",
                                      poll_interval_s=0.05,
                                      heartbeat_interval_s=0.1)
        finally:
            server.stop()
            coordinator.close()
        assert code == 0
        assert coordinator.finished
        assert coordinator.state[0] == DONE
