"""Register allocation: compactness, correctness, pressure limits."""

import numpy as np
import pytest

from repro.compiler import allocate_registers
from repro.errors import CompileError
from repro.isa import CmpOp, KernelBuilder, Reg
from repro.sim import LaunchConfig, run_kernel
from tests.conftest import interpret_kernel


def chain_kernel(length=40):
    """Long dependence chain: one live value at a time."""
    b = KernelBuilder("chain", num_params=1)
    out = b.params(1)[0]
    v = b.mov(1.0)
    for _ in range(length):
        v = b.add(v, 2.0)
    b.st_global(b.add(out, b.tid_x()), v)
    return b.build()


def wide_kernel(width=12):
    """Many simultaneously-live values."""
    b = KernelBuilder("wide", num_params=1)
    out = b.params(1)[0]
    vals = [b.mul(b.tid_x(), float(i + 1)) for i in range(width)]
    total = vals[0]
    for v in vals[1:]:
        total = b.add(total, v)
    b.st_global(b.add(out, b.tid_x()), total)
    return b.build()


class TestCompaction:
    def test_chain_needs_few_registers(self):
        kernel = chain_kernel()
        assert kernel.num_regs > 40
        allocated = allocate_registers(kernel)
        assert allocated.num_regs <= 5

    def test_wide_kernel_needs_width_registers(self):
        allocated = allocate_registers(wide_kernel(12))
        assert 12 <= allocated.num_regs <= 15

    def test_num_regs_matches_kernel(self):
        allocated = allocate_registers(chain_kernel())
        assert allocated.kernel.num_regs == allocated.num_regs


class TestSemanticsPreserved:
    @pytest.mark.parametrize("make", [chain_kernel, wide_kernel])
    def test_allocation_preserves_results(self, make):
        kernel = make()
        allocated = allocate_registers(kernel).kernel
        launch = LaunchConfig(grid=(1, 1), block=(32, 1), params=(0,))
        m0, m1 = np.zeros(64), np.zeros(64)
        run_kernel(kernel, launch, m0)
        run_kernel(allocated, launch, m1)
        assert np.array_equal(m0, m1)

    def test_loop_kernel_allocation(self, loop_kernel):
        allocated = allocate_registers(loop_kernel).kernel
        launch = LaunchConfig(grid=(2, 1), block=(64, 1),
                              params=(100, 0, 128))
        m0 = np.zeros(512)
        m0[:100] = np.arange(100.0)
        m0[128:228] = 2.0
        m1 = m0.copy()
        run_kernel(loop_kernel, launch, m0)
        run_kernel(allocated, launch, m1)
        assert np.allclose(m0, m1)

    def test_guarded_partial_defs_survive_allocation(self):
        """The allocator must not reuse a register whose old value lives
        through a predicated write."""
        b = KernelBuilder("g", num_params=1)
        out = b.params(1)[0]
        tid = b.tid_x()
        val = b.mov(7.0)
        p = b.setp(CmpOp.LT, tid, 16)
        b.mov(9.0, dst=val, guard=p)
        # An unrelated value that could be tempted into val's register.
        other = b.mul(tid, 3.0)
        b.st_global(b.add(out, tid), b.add(val, other))
        kernel = b.build()
        allocated = allocate_registers(kernel).kernel
        launch = LaunchConfig(grid=(1, 1), block=(32, 1), params=(0,))
        m0, m1 = np.zeros(64), np.zeros(64)
        run_kernel(kernel, launch, m0)
        run_kernel(allocated, launch, m1)
        assert np.array_equal(m0, m1)

    def test_matches_reference_interpreter(self):
        kernel = allocate_registers(wide_kernel()).kernel
        launch = LaunchConfig(grid=(1, 1), block=(32, 1), params=(0,))
        sim_mem = np.zeros(64)
        run_kernel(kernel, launch, sim_mem)
        ref_mem = interpret_kernel(kernel, launch, np.zeros(64))
        assert np.array_equal(sim_mem, ref_mem)


class TestLimits:
    def test_absurd_pressure_rejected(self):
        with pytest.raises(CompileError):
            allocate_registers(wide_kernel(300))
