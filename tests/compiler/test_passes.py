"""Checkpointing, duplication, tail-DMR, renaming, and compaction passes."""

import numpy as np
import pytest

from repro.compiler import (apply_tail_dmr, duplicate_instructions,
                            form_regions, insert_checkpoints,
                            RegWarPolicy, scan_kernel, tail_indices,
                            try_rename)
from repro.compiler.compaction import compact_fresh_registers
from repro.isa import Cfg, CmpOp, KernelBuilder, Op, Reg, parse_kernel
from repro.sim import LaunchConfig, run_kernel


def streaming_kernel():
    b = KernelBuilder("stream", num_params=3)
    n, inp, outp = b.params(3)
    i = b.global_index()
    guard = b.setp(CmpOp.LT, i, n)
    with b.if_(guard):
        x = b.ld_global(b.add(inp, i))
        y = b.mul(x, 3.0)
        with b.loop(0, 3):
            y = b.add(y, 1.0, dst=y)
        b.st_global(b.add(outp, i), y)
    return b.build()


def run_pair(k0, k1, launch, mem_size=512, extra_params=()):
    m0 = np.zeros(mem_size)
    m0[:64] = np.arange(64.0)
    m1 = m0.copy()
    run_kernel(k0, launch, m0)
    launch2 = LaunchConfig(grid=launch.grid, block=launch.block,
                           params=launch.params + extra_params)
    run_kernel(k1, launch2, m1, regs_per_thread=None)
    return m0, m1


class TestCheckpointing:
    def _formed(self):
        kernel = streaming_kernel()
        return form_regions(kernel, policy=RegWarPolicy.KEEP)

    def test_inserts_stores_before_boundaries(self):
        formed = self._formed()
        war_regs = {var for _, var in formed.residual_reg_wars}
        ck = insert_checkpoints(formed.kernel, war_regs, prune=True)
        insts = ck.kernel.instructions
        for i, inst in enumerate(insts):
            if inst.ckpt:
                after = next(x for x in insts[i + 1:] if not x.ckpt)
                assert after.op is Op.RB

    def test_pruning_reduces_stores(self):
        formed = self._formed()
        war_regs = {var for _, var in formed.residual_reg_wars}
        pruned = insert_checkpoints(formed.kernel, war_regs, prune=True)
        full = insert_checkpoints(formed.kernel, war_regs, prune=False)
        assert pruned.checkpoint_stores <= full.checkpoint_stores

    def test_adds_one_parameter(self):
        formed = self._formed()
        ck = insert_checkpoints(formed.kernel, set())
        assert ck.kernel.num_params == formed.kernel.num_params + 1
        assert ck.ckpt_param_index == formed.kernel.num_params

    def test_storage_sizing(self):
        formed = self._formed()
        war_regs = {var for _, var in formed.residual_reg_wars}
        ck = insert_checkpoints(formed.kernel, war_regs, prune=False)
        assert ck.storage_words(total_warps=4) == 4 * ck.num_slots * 32

    def test_semantics_preserved(self):
        kernel = streaming_kernel()
        formed = form_regions(kernel, policy=RegWarPolicy.KEEP)
        war_regs = {var for _, var in formed.residual_reg_wars}
        ck = insert_checkpoints(formed.kernel, war_regs, prune=False)
        launch = LaunchConfig(grid=(2, 1), block=(32, 1),
                              params=(64, 0, 64))
        ckpt_base = 300.0
        m0, m1 = run_pair(kernel, ck.kernel, launch, mem_size=4096,
                          extra_params=(ckpt_base,))
        # Outputs agree; only the checkpoint area may differ.
        assert np.allclose(m0[:300], m1[:300])


class TestDuplication:
    def test_all_duplicable_replicated(self):
        kernel = streaming_kernel()
        dup = duplicate_instructions(kernel)
        originals = sum(1 for inst in kernel.instructions
                        if inst.info.duplicable)
        assert dup.duplicated == originals
        shadows = sum(1 for inst in dup.kernel.instructions if inst.shadow)
        assert shadows == originals

    def test_replica_follows_original(self):
        dup = duplicate_instructions(streaming_kernel())
        insts = dup.kernel.instructions
        for i, inst in enumerate(insts):
            if inst.shadow:
                assert insts[i - 1].op == inst.op
                assert not insts[i - 1].shadow

    def test_shadows_never_write_original_regs(self):
        kernel = streaming_kernel()
        base = kernel.num_regs
        dup = duplicate_instructions(kernel)
        for inst in dup.kernel.instructions:
            if inst.shadow and isinstance(inst.dst, Reg):
                assert inst.dst.index >= base

    def test_memory_not_duplicated(self):
        dup = duplicate_instructions(streaming_kernel())
        for inst in dup.kernel.instructions:
            if inst.shadow:
                assert not (inst.info.is_load or inst.info.is_store)

    def test_semantics_preserved(self):
        kernel = streaming_kernel()
        dup = duplicate_instructions(kernel)
        launch = LaunchConfig(grid=(2, 1), block=(32, 1), params=(64, 0, 64))
        m0, m1 = run_pair(kernel, dup.kernel, launch)
        assert np.allclose(m0, m1)

    def test_noop_when_filter_rejects_all(self):
        dup = duplicate_instructions(streaming_kernel(),
                                     should_duplicate=lambda i, inst: False)
        assert dup.duplicated == 0


class TestTailDmr:
    def test_tail_marks_before_boundaries(self):
        formed = form_regions(streaming_kernel())
        marked = tail_indices(formed.kernel, wcdl=4)
        assert marked
        insts = formed.kernel.instructions
        for i in marked:
            assert insts[i].info.duplicable

    def test_budget_limits_marking(self):
        formed = form_regions(streaming_kernel())
        small = tail_indices(formed.kernel, wcdl=1)
        large = tail_indices(formed.kernel, wcdl=50)
        assert len(small) <= len(large)

    def test_fewer_duplicates_than_full_dmr(self):
        formed = form_regions(streaming_kernel())
        tail = apply_tail_dmr(formed.kernel, wcdl=2)
        full = duplicate_instructions(formed.kernel)
        assert 0 < tail.duplicated < full.duplicated

    def test_semantics_preserved(self):
        formed = form_regions(streaming_kernel())
        tail = apply_tail_dmr(formed.kernel, wcdl=6)
        launch = LaunchConfig(grid=(2, 1), block=(32, 1), params=(64, 0, 64))
        m0, m1 = run_pair(formed.kernel, tail.kernel, launch)
        assert np.allclose(m0, m1)


class TestRenaming:
    def test_guarded_def_not_renamed(self):
        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    setp.lt p0, r1, 1
    mov r1, 5
    @p0 mov r1, 7
    st.global [r0], r1
    exit
""")
        cfg = Cfg(kernel)
        assert try_rename(kernel, cfg, 3, Reg(1)) is None

    def test_merge_blocks_renaming(self):
        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    setp.lt p0, r1, 1
    @p0 bra A
    mov r1, 5
    bra J
A:
    mov r1, 7
J:
    st.global [r0], r1
    exit
""")
        cfg = Cfg(kernel)
        # Either def's uses merge with the other def at J.
        assert try_rename(kernel, cfg, 3, Reg(1)) is None
        assert try_rename(kernel, cfg, 5, Reg(1)) is None


class TestCompaction:
    def test_accumulator_chain_shares_one_register(self):
        """An unrolled accumulator chain renamed by region formation must
        compact to O(1) fresh registers (WARAW reuse)."""
        b = KernelBuilder("acc", num_params=2)
        inp, outp = b.params(2)
        i = b.global_index()
        # Force a boundary before the chain via an in-place update.
        x = b.ld_global(b.add(inp, i))
        b.st_global(b.add(inp, i), b.add(x, 1.0))
        acc = b.mov(0.0)
        for k in range(8):
            acc = b.add(acc, float(k), dst=acc)
        b.st_global(b.add(outp, i), acc)
        kernel = b.build()
        from repro.compiler import allocate_registers

        allocated = allocate_registers(kernel)
        formed = form_regions(allocated.kernel)
        assert scan_kernel(formed.kernel).clean
        # Compaction keeps the register growth small.
        assert formed.kernel.num_regs <= allocated.num_regs + 3

    def test_compaction_noop_when_no_fresh(self):
        kernel = streaming_kernel()
        out = compact_fresh_registers(kernel, kernel.num_regs)
        assert out.instructions == kernel.instructions
