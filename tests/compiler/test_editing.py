"""Instruction insertion/removal with label remapping."""

from hypothesis import given, strategies as st

from repro.compiler import insert_instructions, remove_instructions
from repro.isa import Instruction, Op, parse_kernel

BASE = """
.kernel k
    mov r0, 0
HEAD:
    setp.ge p0, r0, 5
    @p0 bra END
    add r0, r0, 1
    bra HEAD
END:
    exit
"""

_RB = Instruction(op=Op.RB)


class TestInsert:
    def test_label_at_insertion_point_captures(self):
        kernel = parse_kernel(BASE)
        head = kernel.labels["HEAD"]
        out = insert_instructions(kernel, {head: [_RB]})
        assert out.instructions[out.labels["HEAD"]].op is Op.RB

    def test_label_without_capture_skips(self):
        kernel = parse_kernel(BASE)
        head = kernel.labels["HEAD"]
        out = insert_instructions(kernel, {head: [_RB]},
                                  capture_labels=False)
        target = out.instructions[out.labels["HEAD"]]
        assert target.op is not Op.RB

    def test_later_labels_shift(self):
        kernel = parse_kernel(BASE)
        out = insert_instructions(kernel, {0: [_RB, _RB]})
        assert out.labels["HEAD"] == kernel.labels["HEAD"] + 2
        assert out.labels["END"] == kernel.labels["END"] + 2

    def test_multiple_points(self):
        kernel = parse_kernel(BASE)
        out = insert_instructions(kernel, {0: [_RB], 3: [_RB, _RB]})
        assert len(out.instructions) == len(kernel.instructions) + 3
        out.validate()

    def test_insert_at_end(self):
        kernel = parse_kernel(BASE)
        n = len(kernel.instructions)
        out = insert_instructions(kernel, {n: [_RB]})
        assert out.instructions[-1].op is Op.RB

    def test_empty_insertions_clone(self):
        kernel = parse_kernel(BASE)
        out = insert_instructions(kernel, {})
        assert out.instructions == kernel.instructions
        assert out is not kernel


class TestRemove:
    def test_label_slides_to_survivor(self):
        kernel = parse_kernel(BASE)
        head = kernel.labels["HEAD"]
        withrb = insert_instructions(kernel, {head: [_RB]})
        rb_index = withrb.labels["HEAD"]
        out = remove_instructions(withrb, {rb_index})
        assert out.instructions == kernel.instructions
        assert out.labels == kernel.labels

    def test_remove_multiple(self):
        kernel = parse_kernel(BASE)
        withrb = insert_instructions(kernel, {0: [_RB], 4: [_RB]})
        rbs = {i for i, inst in enumerate(withrb.instructions)
               if inst.op is Op.RB}
        out = remove_instructions(withrb, rbs)
        assert out.instructions == kernel.instructions
        assert out.labels == kernel.labels


class TestInsertRemoveProperty:
    @given(st.sets(st.integers(0, 6), max_size=4))
    def test_insert_then_remove_is_identity(self, points):
        kernel = parse_kernel(BASE)
        out = insert_instructions(kernel, {p: [_RB] for p in points})
        rbs = {i for i, inst in enumerate(out.instructions)
               if inst.op is Op.RB}
        assert len(rbs) == len(points)
        back = remove_instructions(out, rbs)
        assert back.instructions == kernel.instructions
        assert back.labels == kernel.labels

    @given(st.sets(st.integers(0, 7), min_size=1, max_size=5))
    def test_branch_targets_still_valid(self, points):
        kernel = parse_kernel(BASE)
        out = insert_instructions(kernel, {p: [_RB] for p in points})
        out.validate()
        # The back edge still reaches HEAD's (possibly shifted) location.
        head_inst = out.instructions[out.labels["HEAD"]]
        assert head_inst.op in (Op.RB, Op.SETP)
