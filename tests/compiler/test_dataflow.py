"""Liveness, reaching definitions, and provenance analyses."""

from repro.compiler import Liveness, ParamOrigin, Provenance, ReachingDefs
from repro.compiler.dataflow import BOTTOM
from repro.isa import Cfg, Pred, Reg, parse_kernel

LINEAR = """
.kernel k
    ld.param r0, [0]
    add r1, r0, 1
    add r2, r1, 2
    st.global [r2], r1
    exit
"""

LOOP = """
.kernel k
    mov r0, 0
    mov r1, 100
HEAD:
    setp.ge p0, r0, 10
    @p0 bra END
    add r2, r1, r0
    add r0, r0, 1
    bra HEAD
END:
    st.global [r1], r0
    exit
"""

GUARDED = """
.kernel k
    mov r0, 1
    setp.lt p0, r0, 5
    @p0 mov r0, 2
    st.global [r1], r0
    exit
"""


class TestLiveness:
    def test_dead_after_last_use(self):
        cfg = Cfg(parse_kernel(LINEAR))
        live = Liveness(cfg)
        # r0 dead after instruction 1 (its only use).
        assert Reg(0) not in live.live_after(1)
        assert Reg(0) in live.live_before(1)

    def test_store_operands_live_before_store(self):
        cfg = Cfg(parse_kernel(LINEAR))
        live = Liveness(cfg)
        assert {Reg(1), Reg(2)} <= live.live_before(3)

    def test_loop_carried_liveness(self):
        kernel = parse_kernel(LOOP)
        live = Liveness(Cfg(kernel))
        # r0 and r1 are live around the back edge.
        head = kernel.labels["HEAD"]
        assert Reg(0) in live.live_before(head)
        assert Reg(1) in live.live_before(head)

    def test_guarded_def_does_not_kill(self):
        kernel = parse_kernel(GUARDED)
        live = Liveness(Cfg(kernel))
        # r0's initial value is still needed before the guarded mov
        # (false lanes keep it).
        assert Reg(0) in live.live_before(2)

    def test_predicates_tracked(self):
        kernel = parse_kernel(GUARDED)
        live = Liveness(Cfg(kernel))
        assert Pred(0) in live.live_before(2)
        assert Pred(0) not in live.live_after(2)


class TestReachingDefs:
    def test_linear_chain(self):
        kernel = parse_kernel(LINEAR)
        rdefs = ReachingDefs(Cfg(kernel))
        # r1's def at 1 reaches its uses at 2 and 3.
        uses = rdefs.uses_of_def(1)
        assert (2, Reg(1)) in uses
        assert (3, Reg(1)) in uses

    def test_loop_merge(self):
        kernel = parse_kernel(LOOP)
        rdefs = ReachingDefs(Cfg(kernel))
        head = kernel.labels["HEAD"]
        # The compare at HEAD sees both the init def and the increment.
        defs = rdefs.defs_reaching_use(head, Reg(0))
        assert len(defs) == 2

    def test_guarded_def_merges_with_prior(self):
        kernel = parse_kernel(GUARDED)
        rdefs = ReachingDefs(Cfg(kernel))
        defs = rdefs.defs_reaching_use(3, Reg(0))
        assert defs == {0, 2}   # both the init and the partial def


class TestProvenance:
    def test_param_origin_propagates_through_add(self):
        kernel = parse_kernel(LINEAR)
        prov = Provenance(Cfg(kernel))
        assert prov.origin_at(3, Reg(2)) == ParamOrigin(0)

    def test_mul_destroys_provenance(self):
        kernel = parse_kernel(
            ".kernel k\n ld.param r0, [0]\n mul r1, r0, 2\n"
            " st.global [r1], r0\n exit\n")
        prov = Provenance(Cfg(kernel))
        assert prov.origin_at(2, Reg(1)) is BOTTOM

    def test_two_params_distinct(self):
        kernel = parse_kernel(
            ".kernel k\n ld.param r0, [0]\n ld.param r1, [1]\n"
            " add r2, r0, 4\n add r3, r1, 4\n st.global [r2], r3\n exit\n")
        prov = Provenance(Cfg(kernel))
        assert prov.origin_at(4, Reg(2)) == ParamOrigin(0)
        assert prov.origin_at(4, Reg(3)) == ParamOrigin(1)

    def test_merge_of_different_origins_is_bottom(self):
        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    ld.param r1, [1]
    setp.lt p0, r0, r1
    @p0 bra A
    mov r2, r0
    bra J
A:
    mov r2, r1
J:
    st.global [r2], r0
    exit
""")
        prov = Provenance(Cfg(kernel))
        store_index = kernel.labels["J"]
        assert prov.origin_at(store_index, Reg(2)) is BOTTOM

    def test_adding_two_pointers_is_bottom(self):
        kernel = parse_kernel(
            ".kernel k\n ld.param r0, [0]\n ld.param r1, [1]\n"
            " add r2, r0, r1\n st.global [r2], r0\n exit\n")
        prov = Provenance(Cfg(kernel))
        assert prov.origin_at(3, Reg(2)) is BOTTOM
