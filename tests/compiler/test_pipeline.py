"""Scheme composition: the compile pipeline of Section VI-B."""

import numpy as np
import pytest

from repro.compiler import (SCHEMES, compile_kernel, prepare_launch,
                            scan_kernel, scheme_by_name, Detection, Recovery)
from repro.errors import ConfigError
from repro.isa import Op
from repro.sim import LaunchConfig, run_kernel


class TestSchemeRegistry:
    def test_all_nine_plus_flame(self):
        assert len(SCHEMES) == 10
        assert "flame" in SCHEMES
        assert "baseline" in SCHEMES

    def test_flame_is_sensor_renaming_with_opt(self):
        flame = scheme_by_name("flame")
        assert flame.recovery is Recovery.RENAMING
        assert flame.detection is Detection.SENSOR
        assert flame.extend_regions
        noopt = scheme_by_name("sensor_renaming")
        assert not noopt.extend_regions

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError):
            scheme_by_name("magic")

    def test_runtime_flags(self):
        assert scheme_by_name("flame").uses_sensor_runtime
        assert not scheme_by_name("duplication_renaming").uses_sensor_runtime
        assert not scheme_by_name("hybrid_renaming").uses_sensor_runtime


class TestCompileShapes:
    def test_baseline_has_no_markers(self, loop_kernel):
        compiled = compile_kernel(loop_kernel, "baseline")
        assert all(i.op is not Op.RB for i in compiled.kernel.instructions)
        assert compiled.regions is None

    def test_recovery_schemes_are_war_free(self, loop_kernel):
        for name in ("renaming", "flame", "sensor_renaming",
                     "duplication_renaming", "hybrid_renaming"):
            compiled = compile_kernel(loop_kernel, name)
            scan = scan_kernel(compiled.kernel)
            assert not scan.mem_cuts, name

    def test_renaming_schemes_have_no_reg_wars(self, loop_kernel):
        compiled = compile_kernel(loop_kernel, "flame")
        assert scan_kernel(compiled.kernel).clean

    def test_duplication_adds_shadow_instructions(self, loop_kernel):
        plain = compile_kernel(loop_kernel, "renaming")
        dup = compile_kernel(loop_kernel, "duplication_renaming")
        assert len(dup.kernel.instructions) > len(plain.kernel.instructions)
        assert dup.duplication.duplicated > 0

    def test_hybrid_duplicates_less_than_full(self, loop_kernel):
        full = compile_kernel(loop_kernel, "duplication_renaming")
        tail = compile_kernel(loop_kernel, "hybrid_renaming", wcdl=5)
        assert tail.duplication.duplicated <= full.duplication.duplicated

    def test_hybrid_scales_with_wcdl(self, loop_kernel):
        short = compile_kernel(loop_kernel, "hybrid_renaming", wcdl=2)
        long = compile_kernel(loop_kernel, "hybrid_renaming", wcdl=40)
        assert short.duplication.duplicated <= long.duplication.duplicated

    def test_checkpointing_needs_extra_param(self, loop_kernel):
        compiled = compile_kernel(loop_kernel, "checkpointing")
        assert compiled.needs_ckpt_param
        assert compiled.kernel.num_params == loop_kernel.num_params + 1

    def test_shadow_regs_do_not_count_for_occupancy(self, loop_kernel):
        plain = compile_kernel(loop_kernel, "renaming")
        dup = compile_kernel(loop_kernel, "duplication_renaming")
        assert dup.regs_per_thread == plain.regs_per_thread
        # But the functional register file is larger.
        assert dup.kernel.num_regs > plain.kernel.num_regs


class TestFunctionalEquivalence:
    """Every scheme must compute exactly what the baseline computes."""

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_scheme_preserves_semantics(self, loop_kernel, scheme):
        launch = LaunchConfig(grid=(2, 1), block=(64, 1),
                              params=(100, 0, 128))

        def init():
            mem = np.zeros(4096)
            mem[:100] = np.arange(100) / 7.0
            mem[128:228] = 1.5
            return mem

        golden = init()
        run_kernel(loop_kernel, launch, golden)

        compiled = compile_kernel(loop_kernel, scheme)
        mem = init()
        params, mem = prepare_launch(compiled, launch.params, mem,
                                     launch.num_blocks,
                                     launch.threads_per_block)
        launch2 = LaunchConfig(grid=launch.grid, block=launch.block,
                               params=params)
        run_kernel(compiled.kernel, launch2, mem,
                   regs_per_thread=compiled.regs_per_thread)
        assert np.allclose(mem[:300], golden[:300]), scheme

    def test_prepare_launch_noop_without_ckpt(self, loop_kernel):
        compiled = compile_kernel(loop_kernel, "renaming")
        mem = np.zeros(16)
        params, mem2 = prepare_launch(compiled, (1.0,), mem, 2, 64)
        assert params == (1.0,)
        assert mem2 is mem
