"""Unit tests for the anti-dependence analysis building blocks."""

import pytest
from hypothesis import given, strategies as st

from repro.compiler import MemLoc, RegionState, scan_kernel
from repro.compiler.dataflow import ParamOrigin
from repro.isa import Reg, Space, parse_kernel


def loc(space=Space.GLOBAL, prov=None, base=0, version=0, offset=0):
    return MemLoc(space=space, prov=prov, base=Reg(base), version=version,
                  offset=offset)


class TestMemLocAlgebra:
    def test_different_spaces_never_alias(self):
        assert not loc(Space.GLOBAL).may_alias(loc(Space.SHARED))

    def test_different_provenance_never_alias(self):
        a = loc(prov=ParamOrigin(0))
        b = loc(prov=ParamOrigin(1), base=1)
        assert not a.may_alias(b)

    def test_same_base_version_different_offset_disjoint(self):
        assert not loc(offset=0).may_alias(loc(offset=4))

    def test_same_base_version_same_offset_alias(self):
        assert loc(offset=4).may_alias(loc(offset=4))

    def test_version_mismatch_is_conservative(self):
        assert loc(version=0).may_alias(loc(version=1))

    def test_unknown_bases_conservative(self):
        assert loc(base=0).may_alias(loc(base=1))

    def test_same_location_requires_exact_match(self):
        assert loc().same_location(loc())
        assert not loc().same_location(loc(offset=1))
        assert not loc().same_location(loc(version=1))

    @given(st.integers(0, 3), st.integers(0, 3), st.integers(-8, 8),
           st.integers(-8, 8))
    def test_alias_is_symmetric(self, base_a, base_b, off_a, off_b):
        a = loc(base=base_a, offset=off_a)
        b = loc(base=base_b, offset=off_b)
        assert a.may_alias(b) == b.may_alias(a)

    @given(st.integers(0, 3), st.integers(-8, 8))
    def test_alias_is_reflexive(self, base, offset):
        a = loc(base=base, offset=offset)
        assert a.may_alias(a)


class TestRegionState:
    def test_reset_clears_accesses_not_versions(self):
        state = RegionState()
        state.mem_reads.append(loc())
        state.reg_reads.add(Reg(1))
        state.versions[Reg(1)] = 3
        state.reset()
        assert not state.mem_reads
        assert not state.reg_reads
        assert state.versions[Reg(1)] == 3

    def test_copy_is_deep_enough(self):
        state = RegionState()
        state.mem_reads.append(loc())
        clone = state.copy()
        clone.mem_reads.append(loc(offset=1))
        assert len(state.mem_reads) == 1


class TestScanEdgeCases:
    def test_atomic_read_conflicts_with_later_store_elsewhere(self):
        """The atomic's implicit read participates in WAR detection: a
        later store that may alias it (different base) must cut."""
        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    atom.global.add r1, [r0], 1
    st.global [r2], r1
    exit
""")
        scan = scan_kernel(kernel)
        assert 2 in scan.mem_cuts

    def test_atomics_isolated_by_region_formation(self):
        """Region formation gives every atomic its own boundary, so its
        non-idempotent read-modify-write never shares a region with
        preceding code."""
        from repro.compiler import form_regions
        from repro.isa import Op

        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    add r1, r0, 1
    atom.global.add r2, [r0], 1
    st.global [r0], r2
    exit
""")
        formed = form_regions(kernel)
        atom_index = next(i for i, inst in
                          enumerate(formed.kernel.instructions)
                          if inst.info.is_atomic)
        assert formed.kernel.instructions[atom_index - 1].op is Op.RB

    def test_rb_resets_region(self):
        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    ld.global r1, [r0]
    rb
    st.global [r0], r1
    exit
""")
        assert scan_kernel(kernel).clean

    def test_guarded_store_does_not_cover(self):
        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    setp.lt p0, r1, 1
    @p0 st.global [r0], 1
    ld.global r1, [r0]
    st.global [r0], r1
    exit
""")
        scan = scan_kernel(kernel)
        assert scan.mem_cuts  # the final store is not WARAW-covered

    def test_unguarded_store_covers(self):
        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    st.global [r0], 1
    ld.global r1, [r0]
    st.global [r0], r1
    exit
""")
        assert not scan_kernel(kernel).mem_cuts

    def test_state_flows_through_single_pred_chain(self):
        """A read before an unconditional branch still conflicts with a
        store after it (same region spans the blocks)."""
        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    ld.global r1, [r0]
    bra NEXT
NEXT:
    st.global [r0], r1
    exit
""")
        # NEXT has one predecessor, so the read flows in... but NEXT is
        # a branch target: region formation adds a merge boundary only
        # for multi-pred blocks; with a single pred the WAR must be
        # detected here.
        scan = scan_kernel(kernel)
        assert scan.mem_cuts

    def test_merge_block_gets_fresh_state(self):
        """Multi-predecessor blocks start fresh in the scan — sound only
        because region formation places a boundary there, which the
        formed kernel then carries as an RB."""
        from repro.compiler import form_regions
        from repro.isa import Op

        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    setp.lt p0, r1, 1
    @p0 bra A
    ld.global r1, [r0]
    bra J
A:
    mov r1, 0
J:
    st.global [r0], r1
    exit
""")
        formed = form_regions(kernel)
        join = formed.kernel.labels["J"]
        assert formed.kernel.instructions[join].op is Op.RB
