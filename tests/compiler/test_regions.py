"""Idempotent region formation: boundary placement, WAR elimination."""

import numpy as np
import pytest

from repro.compiler import (RegWarPolicy, form_regions, region_size_profile,
                            scan_kernel, eligible_extension_barriers)
from repro.isa import CmpOp, KernelBuilder, Op, parse_kernel
from repro.sim import LaunchConfig, run_kernel


def boundaries_of(kernel):
    return [i for i, inst in enumerate(kernel.instructions)
            if inst.op is Op.RB]


class TestMemoryWarCuts:
    def test_in_place_update_gets_cut(self):
        """Figure 2a: a load followed by a may-aliasing store must be in
        different regions."""
        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    ld.global r1, [r0]
    add r1, r1, 1
    st.global [r0], r1
    exit
""")
        formed = form_regions(kernel)
        scan = scan_kernel(formed.kernel)
        assert scan.clean
        assert formed.boundaries >= 1

    def test_disjoint_arrays_not_cut(self):
        """Loads from one pointer param and stores to another can share a
        region (provenance disambiguation)."""
        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    ld.param r1, [1]
    ld.global r2, [r0]
    st.global [r1], r2
    exit
""")
        formed = form_regions(kernel)
        assert formed.war_cuts == 0

    def test_waraw_exempt(self):
        """A store preceded by a same-region store to the same location
        does not break idempotence (WARAW, Section II-C)."""
        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    st.global [r0], 1
    ld.global r1, [r0]
    st.global [r0], r1
    exit
""")
        formed = form_regions(kernel)
        assert formed.war_cuts == 0

    def test_different_offsets_same_base_disjoint(self):
        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    ld.global r1, [r0+4]
    st.global [r0+8], r1
    exit
""")
        assert form_regions(kernel).war_cuts == 0

    def test_same_offset_same_base_cut(self):
        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    ld.global r1, [r0+4]
    st.global [r0+4], r1
    exit
""")
        assert form_regions(kernel).war_cuts == 1

    def test_rewritten_base_is_conservative(self):
        """After the base register changes, offset reasoning must not
        prove disjointness."""
        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    ld.global r1, [r0+4]
    add r0, r0, 1
    st.global [r0+3], r1
    exit
""")
        formed = form_regions(kernel)
        assert scan_kernel(formed.kernel).clean
        assert formed.boundaries >= 1


class TestRegisterWars:
    def test_self_increment_split(self):
        """`add r, r, 1` cannot be fixed by any cut; the split transform
        introduces a temporary and a boundary between read and write."""
        kernel = parse_kernel("""
.kernel k
    mov r0, 0
HEAD:
    setp.ge p0, r0, 5
    @p0 bra END
    add r0, r0, 1
    bra HEAD
END:
    exit
""")
        formed = form_regions(kernel)
        assert scan_kernel(formed.kernel).clean
        assert formed.rename_fallback_cuts >= 1

    # Figure 2b: the WAR appears because a region boundary separates the
    # first write of r1 from its read/re-write (a WARAW chain broken by
    # the boundary).
    _FIG2B = """
.kernel k
    ld.param r0, [0]
    mov r1, 5
    ld.global r3, [r0]
    st.global [r0], r3
    add r2, r1, 1
    mov r1, 7
    st.global [r0+1], r1
    st.global [r0+2], r2
    exit
"""

    def test_linear_war_renamed(self):
        """Figure 3a: a WAR with a unique def-use chain is renamed."""
        formed = form_regions(parse_kernel(self._FIG2B))
        assert formed.renames >= 1
        assert scan_kernel(formed.kernel).clean

    def test_keep_policy_leaves_reg_wars(self):
        formed = form_regions(parse_kernel(self._FIG2B),
                              policy=RegWarPolicy.KEEP)
        assert formed.renames == 0
        assert formed.residual_reg_wars


class TestStructuralBoundaries:
    def test_loop_header_boundary(self):
        kernel = parse_kernel("""
.kernel k
    mov r0, 0
HEAD:
    setp.ge p0, r0, 5
    @p0 bra END
    add r1, r0, 1
    mov r0, r1
    bra HEAD
END:
    exit
""")
        formed = form_regions(kernel)
        # Every path around the back edge crosses at least one RB.
        head = formed.kernel.labels["HEAD"]
        assert formed.kernel.instructions[head].op is Op.RB

    def test_barrier_boundary_before_bar(self):
        b = KernelBuilder("k", num_params=1, shared_words=32)
        p0 = b.params(1)[0]
        tid = b.tid_x()
        b.st_shared(tid, tid)
        b.barrier()
        b.st_global(b.add(p0, tid), b.ld_shared(tid))
        kernel = b.build()
        formed = form_regions(kernel)
        bar = next(i for i, inst in enumerate(formed.kernel.instructions)
                   if inst.op is Op.BAR)
        assert formed.kernel.instructions[bar - 1].op is Op.RB

    def test_atomic_gets_boundary(self):
        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    atom.global.add r1, [r0], 1
    exit
""")
        formed = form_regions(kernel)
        atom = next(i for i, inst in enumerate(formed.kernel.instructions)
                    if inst.info.is_atomic)
        assert formed.kernel.instructions[atom - 1].op is Op.RB

    def test_no_adjacent_boundaries(self):
        kernel = parse_kernel("""
.kernel k
    ld.param r0, [0]
    ld.global r1, [r0]
    st.global [r0], r1
    atom.global.add r2, [r0+9], 1
    exit
""")
        formed = form_regions(kernel)
        ops = [inst.op for inst in formed.kernel.instructions]
        for a, b_ in zip(ops, ops[1:]):
            assert not (a is Op.RB and b_ is Op.RB)


class TestFunctionalPreservation:
    """Region formation must never change kernel semantics."""

    @pytest.mark.parametrize("policy", [RegWarPolicy.RENAME,
                                        RegWarPolicy.KEEP])
    def test_loop_kernel_unchanged(self, loop_kernel, policy):
        launch = LaunchConfig(grid=(2, 1), block=(64, 1),
                              params=(100, 0, 128))
        mem0 = np.zeros(512)
        mem0[:100] = np.arange(100) / 3.0
        mem0[128:228] = 1.0
        golden = mem0.copy()
        run_kernel(loop_kernel, launch, golden)
        formed = form_regions(loop_kernel, policy=policy)
        mem1 = mem0.copy()
        run_kernel(formed.kernel, launch, mem1)
        assert np.allclose(mem1, golden)


class TestExtensionOptimization:
    def _fig10_kernel(self):
        """The Figure 10 pattern: init shared, barrier, read-others,
        write back to the same shared array."""
        b = KernelBuilder("fig10", num_params=1, shared_words=64)
        out = b.params(1)[0]
        tid = b.tid_x()
        b.st_shared(tid, b.add(tid, 100.0))
        b.barrier()
        other = b.ld_shared(b.sub(63.0, tid))
        b.st_shared(tid, b.mul(other, 2.0))
        b.barrier()
        b.st_global(b.add(out, b.global_index()), b.ld_shared(tid))
        return b.build()

    def test_eligible_barrier_detected(self):
        kernel = self._fig10_kernel()
        assert eligible_extension_barriers(kernel)

    def test_opt_reduces_boundaries(self):
        kernel = self._fig10_kernel()
        plain = form_regions(kernel, extend_regions=False)
        opt = form_regions(kernel, extend_regions=True)
        assert opt.boundaries < plain.boundaries
        assert opt.extended_barriers >= 1

    def test_global_store_after_barrier_blocks_eligibility(self):
        b = KernelBuilder("k", num_params=1, shared_words=64)
        out = b.params(1)[0]
        tid = b.tid_x()
        b.st_shared(tid, tid)
        b.barrier()
        b.st_global(b.add(out, tid), b.ld_shared(tid))
        b.barrier()
        b.st_shared(tid, 0.0)
        kernel = b.build()
        eligible = eligible_extension_barriers(kernel)
        bars = [i for i, inst in enumerate(kernel.instructions)
                if inst.op is Op.BAR]
        assert bars[0] not in eligible

    def test_opt_preserves_semantics(self):
        kernel = self._fig10_kernel()
        launch = LaunchConfig(grid=(2, 1), block=(64, 1), params=(0,))
        golden = np.zeros(128)
        run_kernel(kernel, launch, golden)
        opt = form_regions(kernel, extend_regions=True)
        mem = np.zeros(128)
        run_kernel(opt.kernel, launch, mem)
        assert np.allclose(mem, golden)


class TestRegionSizeProfile:
    def test_profile_of_formed_kernel(self, loop_kernel):
        formed = form_regions(loop_kernel)
        sizes = region_size_profile(formed.kernel)
        assert sizes
        assert all(s > 0 for s in sizes)
        assert sum(sizes) == sum(1 for i in formed.kernel.instructions
                                 if i.op is not Op.RB)
