"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import compile_kernel, prepare_launch, scheme_by_name
from repro.core import FlameRuntime
from repro.isa import (CmpOp, Imm, Instruction, Kernel, KernelBuilder, Op,
                       Pred, Reg, Space, Special)
from repro.sim import Gpu, LaunchConfig, NULL_RESILIENCE


# ----------------------------------------------------------------------
# Reference interpreter: executes a kernel one thread at a time with
# plain sequential semantics.  It is the oracle the SIMT simulator is
# checked against: any kernel without cross-thread communication must
# produce identical memory on both.
# ----------------------------------------------------------------------
def interpret_thread(kernel: Kernel, thread_id: int, launch: LaunchConfig,
                     global_mem: np.ndarray, shared: np.ndarray,
                     block_id: int = 0, max_steps: int = 100_000) -> None:
    """Run one thread of one block to completion, sequentially."""
    bx, by = launch.block
    gx, _ = launch.grid
    regs = np.zeros(max(kernel.num_regs, 1))
    preds = np.zeros(max(kernel.num_preds, 1), dtype=bool)
    tid_x, tid_y = thread_id % bx, thread_id // bx
    specials = {
        Special.TID_X: tid_x, Special.TID_Y: tid_y,
        Special.NTID_X: bx, Special.NTID_Y: by,
        Special.CTAID_X: block_id % gx, Special.CTAID_Y: block_id // gx,
        Special.NCTAID_X: gx, Special.NCTAID_Y: launch.grid[1],
        Special.LANEID: thread_id % 32, Special.WARPID: thread_id // 32,
    }

    def read(operand):
        if isinstance(operand, Reg):
            return regs[operand.index]
        if isinstance(operand, Pred):
            return preds[operand.index]
        if isinstance(operand, Imm):
            return operand.value
        return float(specials[operand])

    pc = 0
    steps = 0
    while steps < max_steps:
        steps += 1
        inst = kernel.instructions[pc]
        guard_ok = True
        if inst.guard is not None:
            guard_ok = preds[inst.guard.index] == inst.guard_sense
        if inst.op is Op.EXIT:
            if guard_ok:
                return
            pc += 1
            continue
        if inst.op is Op.BRA:
            pc = kernel.target_of(inst) if guard_ok else pc + 1
            continue
        if inst.op in (Op.BAR, Op.RB) or not guard_ok:
            pc += 1
            continue
        _interp_apply(inst, read, regs, preds, global_mem, shared)
        pc += 1
    raise AssertionError("reference interpreter ran too long")


def _interp_apply(inst, read, regs, preds, global_mem, shared) -> None:
    import math

    op = inst.op
    s = [read(x) for x in inst.srcs]
    mem = {Space.GLOBAL: global_mem, Space.SHARED: shared}

    def write(value: float) -> None:
        regs[inst.dst.index] = value

    if op is Op.LD:
        if inst.space is Space.PARAM:
            write(read(Imm(0)) if False else _interp_param(inst))
            return
        write(mem[inst.space][int(s[0]) + inst.offset])
    elif op is Op.ST:
        mem[inst.space][int(s[0]) + inst.offset] = s[1]
    elif op is Op.ATOM:
        addr = int(s[0]) + inst.offset
        old = mem[inst.space][addr]
        from repro.sim.functional import _atom_apply

        mem[inst.space][addr] = _atom_apply(inst.atom_op, old, s[1])
        if inst.dst is not None:
            write(old)
    elif op is Op.SETP:
        fns = {CmpOp.EQ: lambda a, b: a == b, CmpOp.NE: lambda a, b: a != b,
               CmpOp.LT: lambda a, b: a < b, CmpOp.LE: lambda a, b: a <= b,
               CmpOp.GT: lambda a, b: a > b, CmpOp.GE: lambda a, b: a >= b}
        preds[inst.dst.index] = fns[inst.cmp](s[0], s[1])
    elif op is Op.PAND:
        preds[inst.dst.index] = bool(s[0]) and bool(s[1])
    elif op is Op.POR:
        preds[inst.dst.index] = bool(s[0]) or bool(s[1])
    elif op is Op.PNOT:
        preds[inst.dst.index] = not bool(s[0])
    else:
        write(_interp_alu(op, s, inst))


_PARAMS: tuple[float, ...] = ()


def _interp_param(inst) -> float:
    return _PARAMS[int(inst.srcs[0].value)]


def _interp_alu(op, s, inst) -> float:
    import math

    i = lambda x: int(x)
    if op is Op.ADD:
        return s[0] + s[1]
    if op is Op.SUB:
        return s[0] - s[1]
    if op is Op.MUL:
        return s[0] * s[1]
    if op is Op.MAD:
        return s[0] * s[1] + s[2]
    if op is Op.DIV:
        return s[0] / s[1] if s[1] != 0 else 0.0
    if op is Op.REM:
        return float(i(s[0]) % i(s[1])) if i(s[1]) else 0.0
    if op is Op.MIN:
        return min(s[0], s[1])
    if op is Op.MAX:
        return max(s[0], s[1])
    if op is Op.ABS:
        return abs(s[0])
    if op is Op.NEG:
        return -s[0]
    if op is Op.FLOOR:
        return math.floor(s[0])
    if op is Op.AND:
        return float(i(s[0]) & i(s[1]))
    if op is Op.OR:
        return float(i(s[0]) | i(s[1]))
    if op is Op.XOR:
        return float(i(s[0]) ^ i(s[1]))
    if op is Op.NOT:
        return float(~i(s[0]))
    if op is Op.SHL:
        return float(i(s[0]) << max(0, min(62, i(s[1]))))
    if op is Op.SHR:
        return float(i(s[0]) >> max(0, min(62, i(s[1]))))
    if op is Op.MOV:
        return s[0]
    if op is Op.SELP:
        return s[0] if s[2] else s[1]
    if op is Op.SQRT:
        return math.sqrt(max(s[0], 0.0))
    if op is Op.RSQRT:
        return 1.0 / math.sqrt(max(s[0], 1e-300))
    if op is Op.EXP:
        return math.exp(max(-700.0, min(700.0, s[0])))
    if op is Op.LOG:
        return math.log(max(s[0], 1e-300))
    if op is Op.SIN:
        return math.sin(s[0])
    if op is Op.COS:
        return math.cos(s[0])
    raise AssertionError(f"no reference semantics for {op}")


def interpret_kernel(kernel: Kernel, launch: LaunchConfig,
                     global_mem: np.ndarray) -> np.ndarray:
    """Sequential reference execution of a whole launch (only valid for
    kernels without cross-thread communication through shared memory)."""
    global _PARAMS
    _PARAMS = tuple(launch.params)
    mem = global_mem.copy()
    for block_id in range(launch.num_blocks):
        shared = np.zeros(max(kernel.shared_words, 1))
        for t in range(launch.threads_per_block):
            interpret_thread(kernel, t, launch, mem, shared, block_id)
    return mem


# ----------------------------------------------------------------------
# Run helpers
# ----------------------------------------------------------------------
def run_compiled(instance, scheme_name: str, wcdl: int = 20,
                 scheduler: str = "GTO", gpu_config=None,
                 injector=None, sanitizer=None, fast: bool = True,
                 tracer=None, **launch_kwargs):
    """Compile a workload instance under a scheme and simulate it.

    Returns (RunResult, final_memory, verified).
    """
    from repro.arch import GTX480

    compiled = compile_kernel(instance.kernel, scheme_name, wcdl=wcdl)
    scheme = scheme_by_name(scheme_name)
    runtime = FlameRuntime(wcdl) if scheme.uses_sensor_runtime \
        else NULL_RESILIENCE
    gpu = Gpu(gpu_config or GTX480, resilience=runtime, scheduler=scheduler,
              sanitizer=sanitizer, fast=fast, tracer=tracer)
    if injector is not None:
        gpu.fault_injector = injector
    mem = instance.fresh_memory()
    params, mem = prepare_launch(
        compiled, instance.launch.params, mem,
        instance.launch.num_blocks, instance.launch.threads_per_block)
    launch = LaunchConfig(grid=instance.launch.grid,
                          block=instance.launch.block, params=params)
    result = gpu.launch(compiled.kernel, launch, mem,
                        regs_per_thread=compiled.regs_per_thread,
                        **launch_kwargs)
    return result, mem, instance.verify(mem)


@pytest.fixture
def saxpy_kernel():
    """A small guarded streaming kernel used across many tests."""
    b = KernelBuilder("saxpy", num_params=4)
    n, a, xp, yp = b.params(4)
    i = b.global_index()
    lt = b.setp(CmpOp.LT, i, n)
    with b.if_(lt):
        x = b.ld_global(b.add(xp, i))
        y = b.ld_global(b.add(yp, i))
        b.st_global(b.add(yp, i), b.mad(a, x, y))
    return b.build()


@pytest.fixture
def loop_kernel():
    """A kernel with a loop, an accumulator, and an in-place update —
    exercising self-WARs, memory WARs, and divergence."""
    b = KernelBuilder("loopy", num_params=3)
    n, xp, yp = b.params(3)
    i = b.global_index()
    lt = b.setp(CmpOp.LT, i, n)
    with b.if_(lt):
        xa = b.add(xp, i)
        ya = b.add(yp, i)
        acc = b.mov(0.0)
        with b.loop(0, 4) as t:
            x = b.ld_global(xa)
            y = b.ld_global(ya)
            b.st_global(ya, b.mad(2.0, y, x))
            acc = b.add(acc, x, dst=acc)
        b.st_global(xa, acc)
    return b.build()


@pytest.fixture
def barrier_kernel():
    """Shared-memory staging plus barrier: block-reverse of the input."""
    width = 64
    b = KernelBuilder("rev", num_params=2, shared_words=width)
    ib, ob = b.params(2)
    tid = b.tid_x()
    gid = b.global_index()
    b.st_shared(tid, b.ld_global(b.add(ib, gid)))
    b.barrier()
    rev = b.sub(float(width - 1), tid)
    blk = b.mul(b.ctaid_x(), float(width))
    b.st_global(b.add(ob, b.add(blk, rev)), b.ld_shared(tid))
    return b.build()
