"""Tracer ring buffer, exporters, and state round-trip."""

from repro.obs import Tracer


class TestRing:
    def test_bounded_ring_drops_oldest(self):
        tracer = Tracer(capacity=4)
        for cycle in range(10):
            tracer.event("tick", cycle, 0, 0)
        assert tracer.emitted == 10
        assert len(tracer.events) == 4
        assert tracer.dropped == 6
        assert [evt.ts for evt in tracer.events] == [6, 7, 8, 9]

    def test_unbounded_keeps_everything(self):
        tracer = Tracer(capacity=None)
        for cycle in range(100):
            tracer.event("tick", cycle, 0, 0)
        assert tracer.dropped == 0
        assert len(tracer.events) == 100

    def test_clear(self):
        tracer = Tracer()
        tracer.event("tick", 1, 0, 0)
        tracer.clear()
        assert tracer.emitted == 0
        assert not tracer.events


class TestEvents:
    def test_event_fields(self):
        tracer = Tracer()
        tracer.event("stall", 7, 2, 3, {"cause": "barrier"}, ph="X", dur=5)
        evt = tracer.events[0]
        assert (evt.name, evt.ph, evt.ts, evt.dur) == ("stall", "X", 7, 5)
        assert (evt.pid, evt.tid) == (2, 3)
        assert evt.args == {"cause": "barrier"}

    def test_counter_event(self):
        tracer = Tracer()
        tracer.counter("l1", 9, 1, {"hits": 10, "misses": 2})
        evt = tracer.events[0]
        assert evt.ph == "C"
        assert evt.args == {"hits": 10, "misses": 2}

    def test_exporter_sees_every_event_before_eviction(self):
        tracer = Tracer(capacity=2)
        seen = []
        tracer.add_exporter(seen.append)
        for cycle in range(5):
            tracer.event("tick", cycle, 0, 0)
        assert len(seen) == 5          # streaming: nothing lost
        assert len(tracer.events) == 2  # ring: only the newest retained


class TestStateRoundTrip:
    def test_capture_restore(self):
        tracer = Tracer(capacity=8)
        for cycle in range(5):
            tracer.event("tick", cycle, 0, 0)
        tracer.now = 42
        state = tracer.capture_state()
        for cycle in range(5, 12):
            tracer.event("tick", cycle, 0, 0)
        tracer.now = 99
        tracer.restore_state(state)
        assert tracer.emitted == 5
        assert tracer.now == 42
        assert [evt.ts for evt in tracer.events] == [0, 1, 2, 3, 4]
        # The restored ring keeps its bound.
        for cycle in range(20):
            tracer.event("tick", cycle, 0, 0)
        assert len(tracer.events) == 8
