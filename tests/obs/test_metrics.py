"""Metrics registry: label hygiene, atomicity, exposition round-trips."""

import math
import threading

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import (Counter, MetricsRegistry, observe_sim_stats,
                               observe_trial, parse_prom_text, render_prom,
                               trial_counts, validate_prom_text)


class TestLabelHygiene:
    def test_counter_requires_total_suffix(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigError):
            registry.counter("repro_things", "h")
        registry.counter("repro_things_total", "h")  # fine

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        for bad in ("1abc_total", "has space_total", "dash-ed_total"):
            with pytest.raises(ConfigError):
                registry.counter(bad, "h")

    def test_invalid_label_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("__reserved", "le", "1num", "has-dash"):
            with pytest.raises(ConfigError):
                registry.counter("repro_x_total", "h", (bad,))

    def test_labels_must_match_declared_set_exactly(self):
        registry = MetricsRegistry()
        metric = registry.counter("repro_x_total", "h", ("site",))
        with pytest.raises(ConfigError):
            metric.labels()  # missing
        with pytest.raises(ConfigError):
            metric.labels(site="a", extra="b")  # superfluous
        metric.labels(site="a").inc()

    def test_reregistration_returns_same_metric(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", "h", ("site",))
        b = registry.counter("repro_x_total", "h", ("site",))
        assert a is b

    def test_reregistration_with_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "h", ("site",))
        with pytest.raises(ConfigError):
            registry.counter("repro_x_total", "h", ("other",))
        with pytest.raises(ConfigError):
            registry.gauge("repro_x_total", "h", ("site",))

    def test_counter_rejects_negative_and_gauge_allows(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", "h")
        with pytest.raises(ConfigError):
            counter.labels().inc(-1)
        gauge = registry.gauge("repro_g", "h")
        gauge.labels().dec(5)
        assert gauge.labels().value == -5


class TestThreadSafety:
    def test_concurrent_increments_never_lose_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", "h", ("worker",))
        hist = registry.histogram("repro_h", "h", buckets=(1.0, 2.0))

        def work(i):
            child = counter.labels(worker=str(i % 2))
            for _ in range(1000):
                child.inc()
                hist.labels().observe(0.5)

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(child.value for _, child in counter._series())
        assert total == 8000
        assert hist.labels().cumulative()[-1][1] == 8000


class TestHistogram:
    def test_boundary_values_fall_in_lower_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_h", "h", buckets=(0.1, 1.0))
        child = hist.labels()
        child.observe(0.1)   # le="0.1" (inclusive upper bound)
        child.observe(0.10001)
        child.observe(50.0)  # +Inf only
        cum = child.cumulative()
        assert cum[0] == (0.1, 1)
        assert cum[1] == (1.0, 2)
        assert cum[2][0] == math.inf and cum[2][1] == 3
        assert child.sum == pytest.approx(50.20001)

    def test_buckets_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigError):
            registry.histogram("repro_h", "h", buckets=(1.0, 1.0))
        with pytest.raises(ConfigError):
            registry.histogram("repro_h2", "h", buckets=(2.0, 1.0))


class TestExposition:
    def _populated(self):
        registry = MetricsRegistry()
        c = registry.counter("repro_trials_total", "Trials.",
                             ("verdict",))
        c.labels(verdict="masked").inc(3)
        c.labels(verdict='we"ird\\label\n').inc()  # escaping round-trip
        registry.gauge("repro_temp", "Gauge.").labels().set(1.5)
        h = registry.histogram("repro_wall_seconds", "Hist.",
                               buckets=(0.1, 1.0))
        h.labels().observe(0.05)
        h.labels().observe(0.5)
        return registry

    def test_render_validate_round_trip(self):
        text = render_prom(self._populated())
        assert validate_prom_text(text) == []
        families, problems = parse_prom_text(text)
        assert problems == []
        assert families["repro_trials_total"]["type"] == "counter"
        samples = families["repro_trials_total"]["samples"]
        total = sum(v for _, _, v in samples)
        assert total == 4
        labels = {tuple(sorted(l.items())) for _, l, _ in samples}
        assert (("verdict", 'we"ird\\label\n'),) in labels

    def test_histogram_exposition_is_cumulative_with_inf(self):
        text = render_prom(self._populated())
        families, _ = parse_prom_text(text)
        buckets = [(l["le"], v) for n, l, v
                   in families["repro_wall_seconds"]["samples"]
                   if n.endswith("_bucket")]
        # integral bounds render without a trailing .0 ("1", not "1.0")
        assert buckets == [("0.1", 1), ("1", 2), ("+Inf", 2)]

    def test_validator_rejects_broken_documents(self):
        bad = [
            "repro_x_total 1\n",                      # no HELP/TYPE
            "# TYPE repro_x counter\nrepro_x 1\n",    # counter w/o _total
            ("# HELP repro_x_total h\n# TYPE repro_x_total counter\n"
             "repro_x_total -1\n"),                   # negative counter
            ("# HELP repro_h h\n# TYPE repro_h histogram\n"
             'repro_h_bucket{le="1.0"} 2\n'
             'repro_h_bucket{le="+Inf"} 1\n'          # non-monotone
             "repro_h_sum 1\nrepro_h_count 1\n"),
            ("# HELP repro_h h\n# TYPE repro_h histogram\n"
             'repro_h_bucket{le="1.0"} 1\n'           # missing +Inf
             "repro_h_sum 1\nrepro_h_count 1\n"),
        ]
        for text in bad:
            assert validate_prom_text(text), text
        # missing trailing newline is also a problem
        assert validate_prom_text(
            "# HELP repro_x_total h\n# TYPE repro_x_total counter\n"
            "repro_x_total 1")

    def test_duplicate_series_detected(self):
        text = ("# HELP repro_x_total h\n# TYPE repro_x_total counter\n"
                'repro_x_total{a="1"} 1\nrepro_x_total{a="1"} 2\n')
        assert any("duplicate" in p for p in validate_prom_text(text))


class FakeStats:
    instructions = 100
    cycles = 40
    stall_cycles = {"rollback": 7, "barrier": 3}
    l1_hits = 5
    l1_misses = 1
    l2_hits = 0
    l2_misses = 0
    superblocks_executed = 4
    superblock_fallbacks = {"divergence": 2}
    mem_windows_executed = 3
    mem_window_insts = 30


class TestStackInstrumentation:
    def test_observe_sim_stats_names_and_labels(self):
        registry = MetricsRegistry()
        observe_sim_stats(registry, FakeStats(), {"workload": "Triad"})
        text = render_prom(registry)
        assert validate_prom_text(text) == []
        families, _ = parse_prom_text(text)
        stall = {l["cause"]: v for _, l, v
                 in families["repro_stall_cycles_total"]["samples"]}
        assert stall == {"rollback": 7, "barrier": 3}
        cache = {(l["level"], l["event"]): v for _, l, v
                 in families["repro_sim_cache_events_total"]["samples"]}
        assert cache == {("l1", "hits"): 5, ("l1", "misses"): 1}

    def test_observe_trial_and_trial_counts(self):
        from repro.core.campaign import TrialResult

        registry = MetricsRegistry()
        for outcome in ("masked", "masked", "sdc"):
            observe_trial(registry, TrialResult(
                workload="Triad", scheme="flame", index=0,
                outcome=outcome, site="dest_reg", cycles=10,
                wall_time_s=0.01))
        counts = trial_counts(registry)
        assert counts[("Triad", "flame", "dest_reg")] == {"masked": 2,
                                                          "sdc": 1}
        assert validate_prom_text(render_prom(registry)) == []

    def test_trial_counts_sum_across_shard_label(self):
        from repro.core.campaign import TrialResult

        registry = MetricsRegistry()
        for shard in (0, 1):
            observe_trial(registry, TrialResult(
                workload="Triad", scheme="baseline", index=0,
                outcome="masked", site="dest_reg", cycles=10),
                shard_id=shard)
        counts = trial_counts(registry)
        assert counts[("Triad", "baseline", "dest_reg")] == {"masked": 2}
        assert validate_prom_text(render_prom(registry)) == []

    def test_zero_valued_labeled_series_are_not_emitted(self):
        registry = MetricsRegistry()

        class Empty:
            pass

        observe_sim_stats(registry, Empty(), {})
        families, _ = parse_prom_text(render_prom(registry))
        # Labeled families stay sample-free until a nonzero bump —
        # otherwise every scrape would fabricate zero-cycle stall
        # causes.  (Unlabeled metrics render their single 0 sample, the
        # conventional exposition of an untouched counter.)
        assert families["repro_stall_cycles_total"]["samples"] == []
        assert families["repro_sim_cache_events_total"]["samples"] == []
