"""Chrome-trace/JSONL exporters and the schema validator."""

import json

from repro.obs import (Tracer, chrome_trace, validate_chrome_trace,
                       write_chrome_trace, write_jsonl)
from repro.obs.export import event_dict


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.event("issue", 1, 0, 0, {"pc": 0})
    tracer.event("issue", 2, 0, 1)
    tracer.event("stall", 0, 0, 1_000_000, {"cause": "memory_latency"},
                 ph="X", dur=3)  # closed retroactively: ts < last emit
    tracer.counter("l1", 3, 0, {"hits": 5, "misses": 1})
    return tracer


class TestChromeTrace:
    def test_valid_and_sorted(self):
        data = chrome_trace(_sample_tracer(), workload="toy")
        assert validate_chrome_trace(data) == []
        assert data["otherData"]["workload"] == "toy"
        assert data["otherData"]["dropped"] == 0

    def test_metadata_tracks(self):
        data = chrome_trace(_sample_tracer())
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["tid"]): e["args"]["name"] for e in meta}
        assert names[("process_name", 0)] == "SM 0"
        assert names[("thread_name", 0)] == "warp 0"
        assert names[("thread_name", 1_000_000)] == "SM control"

    def test_complete_events_carry_dur(self):
        data = chrome_trace(_sample_tracer())
        spans = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert spans and all("dur" in e for e in spans)

    def test_write_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(_sample_tracer(), str(path))
        data = json.loads(path.read_text())
        assert validate_chrome_trace(data) == []


class TestJsonl:
    def test_write_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        count = write_jsonl(_sample_tracer(), str(path))
        lines = path.read_text().splitlines()
        assert count == len(lines) == 4
        first = json.loads(lines[0])
        assert first == {"name": "issue", "ph": "i", "cycle": 1,
                         "sm": 0, "warp": 0, "args": {"pc": 0}}

    def test_event_dict_span(self):
        tracer = _sample_tracer()
        span = next(e for e in tracer.events if e.ph == "X")
        assert event_dict(span)["dur"] == 3


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) == ["trace is not a JSON object"]

    def test_rejects_missing_events(self):
        assert validate_chrome_trace({}) == ["missing or non-list "
                                             "traceEvents"]

    def test_flags_missing_keys(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "i", "ts": 1}]})
        assert any("missing 'name'" in p for p in problems)

    def test_flags_backwards_ts(self):
        events = [
            {"name": "a", "ph": "i", "ts": 5, "pid": 0, "tid": 0},
            {"name": "b", "ph": "i", "ts": 3, "pid": 0, "tid": 0},
        ]
        problems = validate_chrome_trace({"traceEvents": events})
        assert any("goes backwards" in p for p in problems)

    def test_other_track_unaffected(self):
        events = [
            {"name": "a", "ph": "i", "ts": 5, "pid": 0, "tid": 0},
            {"name": "b", "ph": "i", "ts": 3, "pid": 0, "tid": 1},
        ]
        assert validate_chrome_trace({"traceEvents": events}) == []

    def test_x_requires_dur(self):
        events = [{"name": "a", "ph": "X", "ts": 1, "pid": 0, "tid": 0}]
        problems = validate_chrome_trace({"traceEvents": events})
        assert any("missing 'dur'" in p for p in problems)
