"""Campaign heartbeat: record schema, rates, and fault tolerance."""

import json
from dataclasses import dataclass

from repro.obs import CampaignHeartbeat


@dataclass
class FakeResult:
    outcome: str = "masked"
    cycles: int = 1000
    wall_time_s: float = 0.25
    fast_start: bool = False
    converged: bool = False
    golden_cache_hit: bool = False
    superblocks_executed: int = 0
    superblock_fallbacks: dict = None

    def __post_init__(self):
        if self.superblock_fallbacks is None:
            self.superblock_fallbacks = {}


def _records(path) -> list[dict]:
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestHeartbeat:
    def test_final_record_always_written(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        hb = CampaignHeartbeat(str(path), total_trials=4, interval=60.0)
        hb.start()
        hb.note_trial(FakeResult(fast_start=True, converged=True,
                                 golden_cache_hit=True))
        hb.note_trial(FakeResult())
        hb.stop()
        records = _records(path)
        assert records and records[-1]["final"] is True
        last = records[-1]
        assert last["kind"] == "campaign_heartbeat"
        assert last["completed"] == 2
        assert last["remaining"] == 2
        # A heartbeat stopped within the minimum rate window reports a
        # guarded 0.0 rate (and no ETA) rather than an absurd
        # extrapolation from microseconds of elapsed time.
        assert last["trials_per_sec"] >= 0
        assert "elapsed_s" in last
        assert last["fast_start_hit_rate"] == 0.5
        assert last["convergence_early_exit_rate"] == 0.5
        assert last["golden_cache_hits"] == 1
        assert last["sim_cycles"] == 2000
        assert last["sim_wall_time_s"] == 0.5

    def test_resumed_trials_shrink_remaining(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        hb = CampaignHeartbeat(str(path), total_trials=10, interval=60.0)
        hb.start()
        hb.note_resumed(7)
        hb.note_trial(FakeResult())
        hb.stop()
        last = _records(path)[-1]
        assert last["resumed_from_journal"] == 7
        assert last["remaining"] == 2

    def test_counts_infra_failures_and_restarts(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        hb = CampaignHeartbeat(str(path), total_trials=2, interval=60.0)
        hb.start()
        hb.note_trial(FakeResult(outcome="infra_error"))
        hb.note_worker_restart()
        hb.stop()
        last = _records(path)[-1]
        assert last["infra_failures"] == 1
        assert last["worker_restarts"] == 1

    def test_periodic_records(self, tmp_path):
        import time

        path = tmp_path / "metrics.jsonl"
        hb = CampaignHeartbeat(str(path), total_trials=1, interval=0.05)
        hb.start()
        time.sleep(0.25)
        hb.stop()
        records = _records(path)
        assert len(records) >= 2  # several periodic + one final
        assert records[0]["final"] is False

    def test_unwritable_path_never_raises(self):
        hb = CampaignHeartbeat("/nonexistent-dir/metrics.jsonl",
                               total_trials=1, interval=60.0)
        hb.start()
        hb.note_trial(FakeResult())
        hb.stop()  # OSError swallowed: telemetry must not kill campaigns


class TestRateGuards:
    def test_snapshot_before_start_reports_zero_elapsed(self, tmp_path):
        hb = CampaignHeartbeat(str(tmp_path / "m.jsonl"), total_trials=4)
        hb.note_trial(FakeResult())
        snap = hb.snapshot()
        assert snap["elapsed_s"] == 0.0
        assert snap["trials_per_sec"] == 0.0
        assert snap["eta_s"] is None

    def test_first_tick_rate_never_explodes(self, tmp_path):
        hb = CampaignHeartbeat(str(tmp_path / "m.jsonl"), total_trials=100,
                               interval=60.0)
        hb.start()
        hb.note_trial(FakeResult())
        snap = hb.snapshot()
        # Microseconds after start: either the guard kicked in (0.0) or
        # real elapsed time was used — never a divide-by-~0 artifact.
        assert snap["trials_per_sec"] < 1e6
        hb.stop()

    def test_rate_and_eta_after_real_elapsed_time(self, tmp_path):
        import time

        hb = CampaignHeartbeat(str(tmp_path / "m.jsonl"), total_trials=4,
                               interval=60.0)
        hb.start()
        time.sleep(0.01)
        hb.note_trial(FakeResult())
        snap = hb.snapshot()
        assert snap["trials_per_sec"] > 0
        assert snap["eta_s"] is not None
        hb.stop()

    def test_every_record_carries_elapsed_s(self, tmp_path):
        path = tmp_path / "m.jsonl"
        hb = CampaignHeartbeat(str(path), total_trials=1, interval=0.05)
        hb.start()
        import time

        time.sleep(0.12)
        hb.stop()
        for record in _records(path):
            assert "elapsed_s" in record
            assert record["elapsed_s"] >= 0


@dataclass
class FakeCellResult(FakeResult):
    workload: str = "Triad"
    scheme: str = "flame"
    site: str = "dest_reg"
    golden_shared: bool = False
    stall_cycles: dict = None

    def __post_init__(self):
        super().__post_init__()
        if self.stall_cycles is None:
            self.stall_cycles = {}


class TestRegistryBridge:
    def test_note_trial_feeds_registry(self, tmp_path):
        from repro.obs import MetricsRegistry, trial_counts

        registry = MetricsRegistry()
        hb = CampaignHeartbeat(str(tmp_path / "m.jsonl"), total_trials=2,
                               registry=registry)
        hb.start()
        hb.note_trial(FakeCellResult())
        hb.note_trial(FakeCellResult(outcome="sdc"))
        hb.stop()
        counts = trial_counts(registry)
        assert counts[("Triad", "flame", "dest_reg")] == {"masked": 1,
                                                          "sdc": 1}

    def test_on_snapshot_fires_on_stop(self, tmp_path):
        seen = []
        hb = CampaignHeartbeat(None, total_trials=1,
                               on_snapshot=seen.append)
        hb.start()
        hb.stop()
        assert seen and seen[-1]["final"] is True

    def test_pathless_heartbeat_writes_no_file(self, tmp_path):
        hb = CampaignHeartbeat(None, total_trials=1)
        hb.start()
        hb.note_trial(FakeResult())
        hb.stop()
        assert list(tmp_path.iterdir()) == []

    def test_stall_cycles_aggregate_into_snapshot(self, tmp_path):
        hb = CampaignHeartbeat(None, total_trials=2)
        hb.note_trial(FakeCellResult(
            stall_cycles={"rollback": 10, "barrier": 5}))
        hb.note_trial(FakeCellResult(stall_cycles={"rollback": 2}))
        snap = hb.snapshot()
        assert snap["stall_cycles"] == {"barrier": 5, "rollback": 12}


class TestSuperblockTelemetry:
    def test_batching_counters_aggregate(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        hb = CampaignHeartbeat(str(path), total_trials=3, interval=60.0)
        hb.start()
        hb.note_trial(FakeResult(superblocks_executed=10,
                                 superblock_fallbacks={"divergence": 2}))
        hb.note_trial(FakeResult(superblocks_executed=5,
                                 superblock_fallbacks={"divergence": 1,
                                                       "injector": 4}))
        hb.stop()
        last = _records(path)[-1]
        assert last["superblocks_executed"] == 15
        assert last["superblock_fallbacks"] == {"divergence": 3,
                                                "injector": 4}

    def test_schema_tolerates_results_without_counters(self, tmp_path):
        @dataclass
        class OldResult:
            outcome: str = "masked"
            cycles: int = 100
            wall_time_s: float = 0.1
            fast_start: bool = False
            converged: bool = False
            golden_cache_hit: bool = False

        path = tmp_path / "metrics.jsonl"
        hb = CampaignHeartbeat(str(path), total_trials=1, interval=60.0)
        hb.start()
        hb.note_trial(OldResult())
        hb.stop()
        last = _records(path)[-1]
        assert last["superblocks_executed"] == 0
        assert last["superblock_fallbacks"] == {}


class TestShardTelemetry:
    def test_retries_counter(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        hb = CampaignHeartbeat(str(path), total_trials=4, interval=60.0)
        hb.start()
        hb.note_retry()
        hb.note_retry()
        hb.stop()
        assert _records(path)[-1]["retries"] == 2

    def test_identity_fields_omitted_for_whole_campaign_heartbeats(
            self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        hb = CampaignHeartbeat(str(path), total_trials=1, interval=60.0)
        hb.start()
        hb.stop()
        last = _records(path)[-1]
        assert "shard_id" not in last
        assert "worker_id" not in last
        assert "shard_staleness_s" not in last

    def test_worker_heartbeats_carry_shard_identity(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        hb = CampaignHeartbeat(str(path), total_trials=3, interval=60.0,
                               shard_id=2, worker_id="subproc-7")
        hb.start()
        hb.note_trial(FakeResult())
        hb.stop()
        last = _records(path)[-1]
        assert last["shard_id"] == 2
        assert last["worker_id"] == "subproc-7"

    def test_shard_liveness_reported_as_staleness(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        hb = CampaignHeartbeat(str(path), total_trials=8, interval=60.0)
        hb.start()
        hb.note_shard_heartbeat(0)
        hb.note_shard_heartbeat(3)
        hb.stop()
        staleness = _records(path)[-1]["shard_staleness_s"]
        assert set(staleness) == {"0", "3"}
        assert all(age >= 0 for age in staleness.values())

    def test_shard_done_counts_trials_as_completed(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        hb = CampaignHeartbeat(str(path), total_trials=10, interval=60.0)
        hb.start()
        hb.note_shard_done(1, trials=5)
        hb.stop()
        last = _records(path)[-1]
        assert last["shards_done"] == 1
        assert last["completed"] == 5
        assert last["remaining"] == 5
