"""SIMT divergence stack, scoreboard, and recovery snapshots."""

import numpy as np
import pytest

from repro.isa import CmpOp, Imm, Instruction, KernelBuilder, Op, Reg
from repro.sim import (LaunchConfig, StackEntry, Warp, WarpSnapshot,
                       WarpState, run_kernel)


def make_warp(kernel, block_threads=32):
    from repro.isa import Special

    class FakeBlock:
        num_threads = block_threads
        first_warp_id = 0

    specials = {s: np.arange(32, dtype=float) for s in Special}
    return Warp(0, FakeBlock(), kernel, num_regs=max(kernel.num_regs, 4),
                warp_size=32, specials=specials,
                params=np.zeros(4), age=0)


def diverging_kernel():
    b = KernelBuilder("d")
    tid = b.tid_x()
    p = b.setp(CmpOp.LT, tid, 16)
    x = b.mov(0.0)
    with b.if_(p):
        b.mov(1.0, dst=x)
    b.st_global(tid, x)
    return b.build()


class TestScoreboard:
    def test_pending_blocks_dependents(self):
        kernel = diverging_kernel()
        warp = make_warp(kernel)
        inst = Instruction(op=Op.ADD, dst=Reg(2), srcs=(Reg(0), Reg(1)))
        warp.mark_pending(Reg(0), ready_cycle=10)
        assert not warp.deps_ready(inst, cycle=5)
        assert warp.deps_ready(inst, cycle=10)

    def test_waw_blocks(self):
        kernel = diverging_kernel()
        warp = make_warp(kernel)
        inst = Instruction(op=Op.MOV, dst=Reg(0), srcs=(Imm(1),))
        warp.mark_pending(Reg(0), ready_cycle=8)
        assert not warp.deps_ready(inst, cycle=4)

    def test_retire_pending_drops_ready(self):
        warp = make_warp(diverging_kernel())
        warp.mark_pending(Reg(0), 5)
        warp.mark_pending(Reg(1), 15)
        warp.retire_pending(10)
        assert Reg(0) not in warp.pending
        assert Reg(1) in warp.pending

    def test_earliest_dep_cycle(self):
        warp = make_warp(diverging_kernel())
        warp.mark_pending(Reg(0), 7)
        warp.mark_pending(Reg(1), 12)
        inst = Instruction(op=Op.ADD, dst=Reg(2), srcs=(Reg(0), Reg(1)))
        assert warp.earliest_dep_cycle(inst) == 12


class TestPartialWarps:
    def test_trailing_lanes_masked(self):
        warp = make_warp(diverging_kernel(), block_threads=20)
        assert warp.active_mask.sum() == 20

    def test_finished_when_all_real_lanes_exit(self):
        kernel = diverging_kernel()
        warp = make_warp(kernel, block_threads=20)
        warp.exit_lanes(Instruction(op=Op.EXIT))
        assert warp.finished


class TestSnapshots:
    def test_capture_restore_roundtrip(self):
        warp = make_warp(diverging_kernel())
        warp.pc = 3
        warp.barrier_count = 2
        snap = WarpSnapshot.capture(warp)
        warp.pc = 7
        warp.barrier_count = 5
        warp.exited[:] = True
        snap.restore(warp)
        assert warp.pc == 3
        assert warp.barrier_count == 2
        assert not warp.exited.any()

    def test_snapshot_isolated_from_later_mutation(self):
        warp = make_warp(diverging_kernel())
        snap = WarpSnapshot.capture(warp)
        warp.stack[-1].mask[:] = False
        assert snap.stack[-1].mask.all()


class TestDivergenceEndToEnd:
    """Divergence reconvergence checked through full simulation."""

    def test_both_paths_execute_exactly_once(self):
        mem = np.zeros(64)
        run_kernel(diverging_kernel(),
                   LaunchConfig(grid=(1, 1), block=(32, 1)), mem)
        assert (mem[:16] == 1).all()
        assert (mem[16:32] == 0).all()

    def test_nested_divergence(self):
        b = KernelBuilder("n")
        tid = b.tid_x()
        x = b.mov(0.0)
        outer = b.setp(CmpOp.LT, tid, 16)
        with b.if_(outer):
            inner = b.setp(CmpOp.LT, tid, 8)
            with b.if_(inner):
                b.mov(2.0, dst=x)
            with b.if_(inner, sense=False):
                b.mov(1.0, dst=x)
        b.st_global(tid, x)
        mem = np.zeros(64)
        run_kernel(b.build(), LaunchConfig(grid=(1, 1), block=(32, 1)), mem)
        assert (mem[:8] == 2).all()
        assert (mem[8:16] == 1).all()
        assert (mem[16:32] == 0).all()

    def test_divergent_loop_trip_counts(self):
        """Each lane loops tid times; lanes reconverge at loop exit."""
        b = KernelBuilder("vl")
        tid = b.tid_x()
        count = b.mov(0.0)
        i = b.reg()
        with b.loop(0, tid, counter=i):
            b.add(count, 1.0, dst=count)
        b.st_global(tid, count)
        mem = np.zeros(64)
        run_kernel(b.build(), LaunchConfig(grid=(1, 1), block=(32, 1)), mem)
        assert np.array_equal(mem[:32], np.arange(32.0))

    def test_guarded_early_exit(self):
        b = KernelBuilder("e")
        tid = b.tid_x()
        p = b.setp(CmpOp.GE, tid, 16)
        b.exit(guard=p)
        b.st_global(tid, 1.0)
        mem = np.zeros(64)
        run_kernel(b.build(), LaunchConfig(grid=(1, 1), block=(32, 1)), mem)
        assert (mem[:16] == 1).all()
        assert (mem[16:32] == 0).all()

    def test_divergent_branch_to_shared_reconvergence(self):
        """if/else via explicit branches."""
        b = KernelBuilder("ie")
        tid = b.tid_x()
        p = b.setp(CmpOp.LT, tid, 10)
        x = b.reg()
        b.bra("ELSE", guard=p, guard_sense=False)
        b.mov(5.0, dst=x)
        b.bra("JOIN")
        b.label("ELSE")
        b.mov(9.0, dst=x)
        b.label("JOIN")
        b.st_global(tid, x)
        mem = np.zeros(64)
        run_kernel(b.build(), LaunchConfig(grid=(1, 1), block=(32, 1)), mem)
        assert (mem[:10] == 5).all()
        assert (mem[10:32] == 9).all()

    def test_stack_never_leaks(self):
        """After a heavily divergent kernel, warps retire cleanly (the
        run completing is the assertion; leaks deadlock or overflow)."""
        b = KernelBuilder("z")
        tid = b.tid_x()
        x = b.mov(0.0)
        for bit in range(4):
            p = b.setp(CmpOp.EQ, b.and_(b.shr(tid, bit), 1), 1)
            with b.if_(p):
                b.add(x, float(2 ** bit), dst=x)
        b.st_global(tid, x)
        mem = np.zeros(64)
        run_kernel(b.build(), LaunchConfig(grid=(1, 1), block=(32, 1)), mem)
        assert np.array_equal(mem[:32], np.arange(32.0) % 16)
