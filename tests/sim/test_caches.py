"""Set-associative LRU cache model."""

from hypothesis import given, strategies as st

from repro.arch import CacheConfig
from repro.sim import Cache


def small_cache(sets=4, assoc=2):
    return Cache(CacheConfig(num_sets=sets, assoc=assoc, line_words=32))


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_shares_tag(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(31)      # same 32-word line
        assert not cache.access(32)  # next line

    def test_conflict_eviction(self):
        cache = small_cache(sets=4, assoc=2)
        # Three lines mapping to set 0: lines 0, 4, 8.
        line_words = 32
        cache.access(0 * 4 * line_words)
        cache.access(1 * 4 * line_words * 4 // 4)  # line 4 -> set 0
        a, b, c = 0, 4 * line_words, 8 * line_words
        cache.invalidate()
        cache.hits = cache.misses = 0
        cache.access(a)
        cache.access(b)
        cache.access(c)          # evicts a (LRU)
        assert not cache.access(a)

    def test_lru_order_updated_on_hit(self):
        cache = small_cache(sets=1, assoc=2)
        a, b, c = 0, 32, 64
        cache.access(a)
        cache.access(b)
        cache.access(a)          # refresh a
        cache.access(c)          # evicts b, not a
        assert cache.access(a)
        assert not cache.access(b)

    def test_store_no_allocate(self):
        cache = small_cache()
        cache.access(0, is_store=True)
        assert not cache.access(0)   # store missed without allocating

    def test_store_hit_counts(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(0, is_store=True)

    def test_invalidate(self):
        cache = small_cache()
        cache.access(0)
        cache.invalidate()
        assert not cache.access(0)

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == 0.5


class TestProperties:
    @given(st.lists(st.integers(0, 8 * 32 - 1), min_size=1, max_size=60))
    def test_working_set_within_one_set_assoc_always_rehits(self, addrs):
        """Accessing at most `assoc` distinct lines of one set never
        evicts: a second pass over the same addresses all hits."""
        cache = small_cache(sets=1, assoc=8)
        distinct_lines = {a // 32 for a in addrs}
        if len(distinct_lines) > 8:
            return
        for a in addrs:
            cache.access(a)
        before_hits = cache.hits
        for a in addrs:
            assert cache.access(a)
        assert cache.hits == before_hits + len(addrs)

    @given(st.lists(st.integers(0, 4096), min_size=1, max_size=100))
    def test_counters_consistent(self, addrs):
        cache = small_cache(sets=8, assoc=4)
        for a in addrs:
            cache.access(a)
        assert cache.hits + cache.misses == len(addrs)
        assert cache.accesses == len(addrs)
