"""Set-associative LRU cache models (scalar oracle + NumPy batch)."""

import numpy as np
from hypothesis import given, strategies as st

from repro.arch import CacheConfig
from repro.sim import BatchCache, Cache, make_cache


def small_cache(sets=4, assoc=2):
    return Cache(CacheConfig(num_sets=sets, assoc=assoc, line_words=32))


def small_batch(sets=4, assoc=2):
    return BatchCache(CacheConfig(num_sets=sets, assoc=assoc,
                                  line_words=32))


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_shares_tag(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(31)      # same 32-word line
        assert not cache.access(32)  # next line

    def test_conflict_eviction(self):
        cache = small_cache(sets=4, assoc=2)
        # Three lines mapping to set 0: lines 0, 4, 8.
        line_words = 32
        cache.access(0 * 4 * line_words)
        cache.access(1 * 4 * line_words * 4 // 4)  # line 4 -> set 0
        a, b, c = 0, 4 * line_words, 8 * line_words
        cache.invalidate()
        cache.hits = cache.misses = 0
        cache.access(a)
        cache.access(b)
        cache.access(c)          # evicts a (LRU)
        assert not cache.access(a)

    def test_lru_order_updated_on_hit(self):
        cache = small_cache(sets=1, assoc=2)
        a, b, c = 0, 32, 64
        cache.access(a)
        cache.access(b)
        cache.access(a)          # refresh a
        cache.access(c)          # evicts b, not a
        assert cache.access(a)
        assert not cache.access(b)

    def test_store_no_allocate(self):
        cache = small_cache()
        cache.access(0, is_store=True)
        assert not cache.access(0)   # store missed without allocating

    def test_store_hit_counts(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(0, is_store=True)

    def test_invalidate(self):
        cache = small_cache()
        cache.access(0)
        cache.invalidate()
        assert not cache.access(0)

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == 0.5


class TestProperties:
    @given(st.lists(st.integers(0, 8 * 32 - 1), min_size=1, max_size=60))
    def test_working_set_within_one_set_assoc_always_rehits(self, addrs):
        """Accessing at most `assoc` distinct lines of one set never
        evicts: a second pass over the same addresses all hits."""
        cache = small_cache(sets=1, assoc=8)
        distinct_lines = {a // 32 for a in addrs}
        if len(distinct_lines) > 8:
            return
        for a in addrs:
            cache.access(a)
        before_hits = cache.hits
        for a in addrs:
            assert cache.access(a)
        assert cache.hits == before_hits + len(addrs)

    @given(st.lists(st.integers(0, 4096), min_size=1, max_size=100))
    def test_counters_consistent(self, addrs):
        cache = small_cache(sets=8, assoc=4)
        for a in addrs:
            cache.access(a)
        assert cache.hits + cache.misses == len(addrs)
        assert cache.accesses == len(addrs)


class TestReplacementOrderPinned:
    """Pin the dict-based LRU bookkeeping to the documented list
    semantics (oldest-first capture order, hit = move-to-back, load
    miss = evict slot 0) so the O(assoc) ``list.remove`` fix cannot
    silently change replacement decisions."""

    def test_capture_order_is_lru_first(self):
        cache = small_cache(sets=1, assoc=3)
        for line in (0, 1, 2):
            cache.access(line * 32)
        assert cache.capture_state()[0] == ((0, 1, 2),)
        cache.access(0)                       # refresh line 0 -> MRU
        assert cache.capture_state()[0] == ((1, 2, 0),)
        cache.access(3 * 32)                  # evicts line 1 (slot 0)
        assert cache.capture_state()[0] == ((2, 0, 3),)
        cache.access(64, is_store=True)       # store hit refreshes too
        assert cache.capture_state()[0] == ((0, 3, 2),)
        cache.access(4 * 32, is_store=True)   # store miss: no allocate
        assert cache.capture_state()[0] == ((0, 3, 2),)

    @given(st.lists(st.tuples(st.integers(0, 1024), st.booleans()),
                    min_size=1, max_size=200))
    def test_reference_replacement_semantics(self, ops):
        """Replay against a straight-line list model of the original
        implementation: identical hit results and identical final
        replacement order."""
        cache = small_cache(sets=2, assoc=4)
        model = [[] for _ in range(2)]
        for addr, is_store in ops:
            line = addr // 32
            ways = model[line % 2]
            if line in ways:
                expect = True
                ways.remove(line)
                ways.append(line)
            else:
                expect = False
                if not is_store:
                    if len(ways) >= 4:
                        ways.pop(0)
                    ways.append(line)
            assert cache.access(addr, is_store=is_store) == expect
        assert cache.capture_state()[0] == tuple(tuple(w) for w in model)


class TestBatchCache:
    """The NumPy batch model must be bit-exact vs the scalar oracle —
    same hit/miss answers, same replacement order, interchangeable
    capture-state tuples."""

    CFG = dict(sets=4, assoc=3)

    @given(st.lists(st.tuples(st.integers(0, 2048), st.booleans()),
                    min_size=1, max_size=200))
    def test_scalar_access_equivalence(self, ops):
        batch = small_batch(**self.CFG)
        oracle = small_cache(**self.CFG)
        for addr, is_store in ops:
            assert (batch.access(addr, is_store=is_store)
                    == oracle.access(addr, is_store=is_store))
        assert batch.capture_state() == oracle.capture_state()

    @given(st.lists(st.tuples(
        st.lists(st.integers(0, 63), min_size=1, max_size=12, unique=True),
        st.booleans()), min_size=1, max_size=40))
    def test_vector_access_equivalence(self, calls):
        """Whole segment vectors (mixing distinct-set fast paths and
        same-set collision replays) answer identically to a sequential
        scalar replay."""
        batch = small_batch(**self.CFG)
        oracle = small_cache(**self.CFG)
        for lines, is_store in calls:
            vec = np.asarray(lines, dtype=np.int64)
            got = batch.access_lines(vec, is_store=is_store)
            want = oracle.access_lines(vec, is_store=is_store)
            assert got.tolist() == want.tolist()
        assert batch.capture_state() == oracle.capture_state()
        assert batch.state_equals(oracle.capture_state())

    @given(st.lists(st.lists(st.integers(-1, 63), min_size=1, max_size=6),
                    min_size=1, max_size=8))
    def test_matrix_access_equivalence(self, rows):
        """Stacked warp×segment matrices with -1 padding, row-major."""
        width = max(len(r) for r in rows)
        mat = np.full((len(rows), width), -1, dtype=np.int64)
        for i, r in enumerate(rows):
            seen = []
            for v in r:                 # de-dup within a row (segments
                if v >= 0 and v not in seen:   # are distinct lines)
                    seen.append(v)
            mat[i, :len(seen)] = seen
        batch = small_batch(**self.CFG)
        oracle = small_cache(**self.CFG)
        got = batch.access_matrix(mat)
        want = oracle.access_matrix(mat)
        assert got.tolist() == want.tolist()
        assert batch.capture_state() == oracle.capture_state()

    def test_state_interchangeable_across_models(self):
        batch = small_batch(**self.CFG)
        for a in (0, 32, 64, 128, 0, 256):
            batch.access(a)
        restored = small_cache(**self.CFG)
        restored.restore_state(batch.capture_state())
        assert restored.capture_state() == batch.capture_state()
        back = small_batch(**self.CFG)
        back.restore_state(restored.capture_state())
        assert back.state_equals(restored.capture_state())

    def test_make_cache_flag(self, monkeypatch):
        cfg = CacheConfig(num_sets=4, assoc=2, line_words=32)
        monkeypatch.delenv("REPRO_SCALAR_CACHE", raising=False)
        assert isinstance(make_cache(cfg), BatchCache)
        monkeypatch.setenv("REPRO_SCALAR_CACHE", "1")
        assert isinstance(make_cache(cfg), Cache)
