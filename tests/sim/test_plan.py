"""Decode-once execution plans: caching, invalidation, and fast-path
equivalence with the reference interpreter on targeted micro-kernels."""

import numpy as np
import pytest

from repro.arch import GTX480
from repro.isa import (AtomOp, CmpOp, Imm, Instruction, KernelBuilder, Op,
                       reconvergence_table_for)
from repro.sim import LaunchConfig, run_kernel
from repro.sim.plan import (ExecPlan, K_BAR, K_BRA, K_EXIT, K_VALUE,
                            PLAN_CACHE_SIZE, _imm_vector, get_plan)
from repro.sim.stats import SUPERBLOCK_TELEMETRY


def both_paths(kernel, launch, mem, **kwargs):
    """Run fast and reference paths on copies of ``mem``; assert cycles,
    stats, and final memory are byte-identical; return the fast result."""
    fast_mem = mem.copy()
    ref_mem = mem.copy()
    fast = run_kernel(kernel, launch, fast_mem, fast=True, **kwargs)
    ref = run_kernel(kernel, launch, ref_mem, fast=False, **kwargs)
    assert fast.cycles == ref.cycles
    # Superblock counters are fast-path bookkeeping — the reference
    # interpreter never batches, so they are excluded from the A/B check.
    fast_stats = {k: v for k, v in fast.stats.as_dict().items()
                  if k not in SUPERBLOCK_TELEMETRY}
    ref_stats = {k: v for k, v in ref.stats.as_dict().items()
                 if k not in SUPERBLOCK_TELEMETRY}
    assert fast_stats == ref_stats
    assert fast_mem.tobytes() == ref_mem.tobytes()
    return fast


class TestPlanCaching:
    def test_plan_cached_per_config(self, saxpy_kernel):
        first = get_plan(saxpy_kernel, GTX480)
        again = get_plan(saxpy_kernel, GTX480)
        assert first is again

    def test_mutating_instructions_invalidates(self, saxpy_kernel):
        stale = get_plan(saxpy_kernel, GTX480)
        saxpy_kernel.instructions[0] = Instruction(
            op=saxpy_kernel.instructions[0].op,
            dst=saxpy_kernel.instructions[0].dst,
            srcs=saxpy_kernel.instructions[0].srcs,
            space=saxpy_kernel.instructions[0].space)
        fresh = get_plan(saxpy_kernel, GTX480)
        assert fresh is not stale
        assert get_plan(saxpy_kernel, GTX480) is fresh

    def test_kind_classification(self, barrier_kernel):
        plan = get_plan(barrier_kernel, GTX480)
        kinds = {rec.inst.op: rec.kind for rec in plan.records}
        assert kinds[Op.BAR] == K_BAR
        assert kinds[Op.EXIT] == K_EXIT
        assert all(rec.kind == K_VALUE for rec in plan.records
                   if rec.inst.op not in (Op.BAR, Op.EXIT, Op.BRA))

    def test_branch_records_bake_targets(self, loop_kernel):
        plan = get_plan(loop_kernel, GTX480)
        reconv = reconvergence_table_for(loop_kernel)
        for index, rec in enumerate(plan.records):
            if rec.kind != K_BRA:
                continue
            assert rec.target == loop_kernel.target_of(rec.inst)
            expected = reconv.get(index, len(loop_kernel.instructions))
            assert rec.reconv_pc == expected

    def test_score_ops_match_scoreboard_surface(self, saxpy_kernel):
        plan = get_plan(saxpy_kernel, GTX480)
        for rec in plan.records:
            inst = rec.inst
            expected = inst.read_regs() + inst.read_preds() + (
                (inst.dst,) if inst.dst is not None else ())
            assert rec.score_ops == expected


class TestPlanCacheEviction:
    @staticmethod
    def _configs(count):
        """``count`` distinct (frozen, hashable) GpuConfigs."""
        return [GTX480.scaled(alu_latency=GTX480.alu_latency + i)
                for i in range(count)]

    def test_cache_bounded_lru(self, saxpy_kernel):
        configs = self._configs(PLAN_CACHE_SIZE + 3)
        for config in configs:
            get_plan(saxpy_kernel, config)
        cache = saxpy_kernel.__dict__["_exec_plans"]
        assert len(cache) == PLAN_CACHE_SIZE
        # Oldest entries fell out, newest survive in insertion order.
        assert list(cache) == configs[3:]

    def test_hit_refreshes_recency(self, saxpy_kernel):
        configs = self._configs(PLAN_CACHE_SIZE)
        plans = [get_plan(saxpy_kernel, c) for c in configs]
        # Touch the oldest entry, then insert one more: the *second*
        # oldest is evicted, the refreshed entry survives.
        assert get_plan(saxpy_kernel, configs[0]) is plans[0]
        extra = GTX480.scaled(mul_latency=GTX480.mul_latency + 1)
        get_plan(saxpy_kernel, extra)
        cache = saxpy_kernel.__dict__["_exec_plans"]
        assert configs[0] in cache
        assert configs[1] not in cache
        assert extra in cache

    def test_evicted_config_rebuilds(self, saxpy_kernel):
        configs = self._configs(PLAN_CACHE_SIZE + 1)
        first = get_plan(saxpy_kernel, configs[0])
        for config in configs[1:]:
            get_plan(saxpy_kernel, config)
        assert configs[0] not in saxpy_kernel.__dict__["_exec_plans"]
        rebuilt = get_plan(saxpy_kernel, configs[0])
        assert rebuilt is not first  # fresh plan, not a resurrected one
        assert rebuilt.matches(saxpy_kernel)


class TestCodegen:
    def test_plan_carries_generated_source(self, saxpy_kernel):
        plan = get_plan(saxpy_kernel, GTX480)
        assert isinstance(plan.gen_source, str)
        assert "def run_" in plan.gen_source

    def test_records_run_specialized_functions(self, saxpy_kernel):
        plan = get_plan(saxpy_kernel, GTX480)
        named = [rec for rec in plan.records
                 if rec.kind == K_VALUE and rec.run is not None]
        assert named, "value records should carry compiled run functions"
        for pc, rec in enumerate(plan.records):
            if rec in named:
                assert rec.run.__name__ == f"run_{pc}"

    def test_invalidation_regenerates_source(self, saxpy_kernel):
        stale = get_plan(saxpy_kernel, GTX480)
        old = saxpy_kernel.instructions[0]
        saxpy_kernel.instructions[0] = Instruction(
            op=old.op, dst=old.dst, srcs=old.srcs, space=old.space)
        fresh = get_plan(saxpy_kernel, GTX480)
        assert fresh is not stale
        assert isinstance(fresh.gen_source, str)
        assert fresh.gen_source is not stale.gen_source


class TestReconvMemo:
    def test_memoized_on_kernel(self, loop_kernel):
        first = reconvergence_table_for(loop_kernel)
        assert reconvergence_table_for(loop_kernel) is first

    def test_instruction_swap_invalidates(self, loop_kernel):
        stale = reconvergence_table_for(loop_kernel)
        old = loop_kernel.instructions[0]
        loop_kernel.instructions[0] = Instruction(
            op=old.op, dst=old.dst, srcs=old.srcs, space=old.space)
        fresh = reconvergence_table_for(loop_kernel)
        assert fresh is not stale
        assert fresh == stale  # same content, recomputed


class TestImmVectors:
    def test_shared_and_frozen(self):
        one = _imm_vector(32, 2.5)
        two = _imm_vector(32, 2.5)
        assert one is two
        assert not one.flags.writeable
        with pytest.raises(ValueError):
            one[0] = 0.0

    def test_distinct_per_value_and_width(self):
        assert _imm_vector(32, 1.0) is not _imm_vector(32, 2.0)
        assert _imm_vector(16, 1.0) is not _imm_vector(32, 1.0)
        assert _imm_vector(16, 1.0).shape == (16,)


class TestFastFlagPlumbing:
    def test_fast_false_leaves_sm_unplanned(self, saxpy_kernel):
        from repro.sim import Gpu
        launch = LaunchConfig(grid=(1, 1), block=(32, 1),
                              params=(16, 2.0, 0, 32))
        gpu = Gpu(GTX480, fast=False)
        gpu.launch(saxpy_kernel, launch, np.zeros(128))
        assert all(sm.plan is None for sm in gpu.sms)

    def test_fast_true_installs_plan(self, saxpy_kernel):
        from repro.sim import Gpu
        launch = LaunchConfig(grid=(1, 1), block=(32, 1),
                              params=(16, 2.0, 0, 32))
        gpu = Gpu(GTX480)
        gpu.launch(saxpy_kernel, launch, np.zeros(128))
        assert all(isinstance(sm.plan, ExecPlan) for sm in gpu.sms)


class TestMicroKernelEquivalence:
    def test_saxpy(self, saxpy_kernel):
        launch = LaunchConfig(grid=(4, 1), block=(64, 1),
                              params=(200, 2.5, 0, 256))
        mem = np.zeros(512)
        mem[:200] = np.arange(200.0)
        mem[256:456] = 1.0
        both_paths(saxpy_kernel, launch, mem)

    def test_divergent_loop(self, loop_kernel):
        launch = LaunchConfig(grid=(2, 1), block=(48, 1),
                              params=(70, 0, 128))
        mem = np.zeros(256)
        mem[:70] = np.arange(70.0) - 30.0
        both_paths(loop_kernel, launch, mem)

    def test_barrier_and_shared(self, barrier_kernel):
        launch = LaunchConfig(grid=(2, 1), block=(64, 1), params=(0, 128))
        mem = np.zeros(256)
        mem[:128] = np.arange(128.0)
        both_paths(barrier_kernel, launch, mem)

    def test_atomics_with_conflicts(self):
        b = KernelBuilder("atom", num_params=1)
        (out,) = b.params(1)
        i = b.global_index()
        slot = b.rem(i, 4.0)
        b.atom_global(AtomOp.ADD, b.add(out, slot), 1.0)
        b.atom_global(AtomOp.MAX, out, i)
        kernel = b.build()
        launch = LaunchConfig(grid=(2, 1), block=(64, 1), params=(0,))
        both_paths(kernel, launch, np.zeros(16))

    def test_predicate_aliasing_guard(self):
        # A guarded SETP writing its own guard predicate: the fast path
        # must recompute the post-execution mask (guard_recheck).
        b = KernelBuilder("alias", num_params=1)
        (out,) = b.params(1)
        i = b.tid_x()
        p = b.setp(CmpOp.LT, i, 16.0)
        b.emit(Instruction(
            op=Op.SETP, dst=p, srcs=(i, Imm(8.0)), cmp=CmpOp.LT,
            guard=p, guard_sense=True))
        with b.if_(p):
            b.st_global(b.add(out, i), 1.0)
        kernel = b.build()
        plan = get_plan(kernel, GTX480)
        assert any(rec.guard_recheck for rec in plan.records)
        launch = LaunchConfig(grid=(1, 1), block=(32, 1), params=(0,))
        both_paths(kernel, launch, np.zeros(64))

    def test_sfu_and_alu_coverage(self):
        b = KernelBuilder("mathy", num_params=1)
        (out,) = b.params(1)
        i = b.tid_x()
        x = b.add(i, 0.5)
        vals = [
            b.sqrt(x), b.rsqrt(x), b.exp(b.neg(x)), b.log(x),
            b.sin(x), b.cos(x), b.div(1.0, b.sub(i, 4.0)),
            b.rem(i, 3.0), b.shl(i, 2.0), b.shr(i, 1.0),
            b.and_(i, 5.0), b.or_(i, 9.0), b.xor(i, 3.0), b.not_(i),
            b.min_(i, 7.0), b.max_(i, 7.0), b.abs_(b.neg(i)),
            b.floor(b.div(i, 3.0)), b.selp(i, x, b.setp(CmpOp.GT, i, 8.0)),
        ]
        acc = b.mov(0.0)
        for v in vals:
            acc = b.add(acc, v, dst=acc)
        b.st_global(b.add(out, i), acc)
        kernel = b.build()
        launch = LaunchConfig(grid=(1, 1), block=(32, 1), params=(0,))
        both_paths(kernel, launch, np.zeros(64))

    def test_strided_and_scattered_accesses(self):
        # Unit-stride, uniform, and scattered loads in one kernel, so the
        # coalescing fast paths and the np.unique fallback all run and
        # must yield identical transactions/latencies (hence cycles).
        b = KernelBuilder("mixed", num_params=1)
        (out,) = b.params(1)
        i = b.tid_x()
        unit = b.ld_global(i)                       # unit-stride
        uniform = b.ld_global(b.mov(5.0))           # broadcast
        scattered = b.ld_global(b.rem(b.mul(i, 7.0), 32.0))
        b.st_global(b.add(out, i),
                    b.add(unit, b.add(uniform, scattered)))
        kernel = b.build()
        launch = LaunchConfig(grid=(1, 1), block=(32, 1), params=(64,))
        mem = np.zeros(128)
        mem[:64] = np.arange(64.0)
        result = both_paths(kernel, launch, mem)
        assert result.stats.global_transactions > 0

    def test_partial_trailing_warp(self, saxpy_kernel):
        launch = LaunchConfig(grid=(1, 1), block=(40, 1),
                              params=(40, 1.5, 0, 64))
        mem = np.zeros(128)
        mem[:40] = 1.0
        both_paths(saxpy_kernel, launch, mem)
