"""Warp scheduler policies (GTO, OLD, LRR, Two-Level)."""

import pytest

from repro.errors import ConfigError
from repro.sim import (GtoScheduler, LrrScheduler, OldestScheduler, SCHEDULERS,
                       TwoLevelScheduler, make_scheduler)


class FakeWarp:
    def __init__(self, age):
        self.age = age
        self.ready = True

    def __repr__(self):
        return f"W{self.age}"


def attach(sched, n):
    warps = [FakeWarp(i) for i in range(n)]
    for w in warps:
        sched.attach(w)
    return warps


def ready(w, cycle):
    return w.ready


class TestGto:
    def test_greedy_sticks_with_current(self):
        sched = GtoScheduler()
        warps = attach(sched, 4)
        first = sched.pick(ready, 0)
        assert sched.pick(ready, 1) is first

    def test_switches_to_oldest_on_stall(self):
        sched = GtoScheduler()
        warps = attach(sched, 4)
        current = sched.pick(ready, 0)
        current.ready = False
        nxt = sched.pick(ready, 1)
        assert nxt is not current
        assert nxt.age == min(w.age for w in warps if w.ready)

    def test_none_when_all_stalled(self):
        sched = GtoScheduler()
        warps = attach(sched, 3)
        for w in warps:
            w.ready = False
        assert sched.pick(ready, 0) is None

    def test_detach_clears_current(self):
        sched = GtoScheduler()
        warps = attach(sched, 2)
        current = sched.pick(ready, 0)
        sched.detach(current)
        assert sched.pick(ready, 1) is not current


class TestOldest:
    def test_always_oldest_ready(self):
        sched = OldestScheduler()
        warps = attach(sched, 4)
        assert sched.pick(ready, 0).age == 0
        warps[0].ready = False
        assert sched.pick(ready, 1).age == 1


class TestLrr:
    def test_round_robin_rotation(self):
        sched = LrrScheduler()
        warps = attach(sched, 3)
        picks = [sched.pick(ready, c).age for c in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_stalled(self):
        sched = LrrScheduler()
        warps = attach(sched, 3)
        warps[1].ready = False
        picks = [sched.pick(ready, c).age for c in range(4)]
        assert 1 not in picks

    def test_empty(self):
        assert LrrScheduler().pick(ready, 0) is None


class TestTwoLevel:
    def test_schedules_within_active_set(self):
        sched = TwoLevelScheduler(active_size=2)
        warps = attach(sched, 6)
        picks = {sched.pick(ready, c).age for c in range(4)}
        assert picks <= {0, 1}

    def test_promotes_when_active_stalls(self):
        sched = TwoLevelScheduler(active_size=2)
        warps = attach(sched, 4)
        sched.pick(ready, 0)
        warps[0].ready = False
        warps[1].ready = False
        pick = sched.pick(ready, 1)
        assert pick is not None
        assert pick.age in (2, 3)

    def test_bad_active_size(self):
        with pytest.raises(ConfigError):
            TwoLevelScheduler(active_size=0)


class TestRegistry:
    def test_all_four_registered(self):
        assert set(SCHEDULERS) == {"GTO", "OLD", "LRR", "2LV"}

    def test_factory(self):
        assert isinstance(make_scheduler("GTO"), GtoScheduler)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_scheduler("FIFO")
