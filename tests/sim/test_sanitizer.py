"""The always-on architectural sanitizer.

A fault-free run must never trip an invariant; targeted mid-run state
corruption (delivered through the fault-injector hook, so it lands at a
precise cycle inside ``Gpu.launch``) must raise :class:`SanitizerError`
with SM/warp/cycle context.
"""

import numpy as np
import pytest

from repro.arch import GTX480
from repro.compiler import compile_kernel, prepare_launch
from repro.core import FlameRuntime
from repro.errors import SanitizerError
from repro.isa import Op
from repro.sim import Gpu, LaunchConfig, Sanitizer, StackEntry
from repro.workloads import WORKLOADS


def launch(abbr="Triad", scheme="flame", wcdl=20, injector=None,
           sanitizer=None):
    instance = WORKLOADS[abbr].instance("tiny")
    compiled = compile_kernel(instance.kernel, scheme, wcdl=wcdl)
    resilience = FlameRuntime(wcdl) if scheme == "flame" else None
    gpu = (Gpu(GTX480, resilience=resilience, sanitizer=sanitizer)
           if resilience else Gpu(GTX480, sanitizer=sanitizer))
    gpu.fault_injector = injector
    mem = instance.fresh_memory()
    params, mem = prepare_launch(compiled, instance.launch.params, mem,
                                 instance.launch.num_blocks,
                                 instance.launch.threads_per_block)
    cfg = LaunchConfig(grid=instance.launch.grid,
                       block=instance.launch.block, params=params)
    result = gpu.launch(compiled.kernel, cfg, mem,
                        regs_per_thread=compiled.regs_per_thread,
                        max_cycles=2_000_000)
    return result, mem


class _CorruptAt:
    """Fault-injector stand-in: calls ``fn(gpu, cycle)`` once at a given
    cycle, from the same hook point real strikes use."""

    def __init__(self, cycle, fn):
        self.cycle = cycle
        self.fn = fn
        self.fired = False

    def tick(self, gpu, cycle):
        if not self.fired and cycle >= self.cycle:
            self.fired = True
            self.fn(gpu, cycle)

    def next_event(self, cycle):
        return self.cycle if not self.fired else 1 << 62


class TestFaultFree:
    @pytest.mark.parametrize("scheme", ["baseline", "flame"])
    @pytest.mark.parametrize("abbr", ["Triad", "SGEMM", "SN"])
    def test_clean_run_has_no_violations(self, abbr, scheme):
        sanitizer = Sanitizer()
        result, _ = launch(abbr, scheme, sanitizer=sanitizer)
        assert result.cycles > 0
        assert sanitizer.checks > 0

    def test_clean_run_output_unchanged_by_sanitizer(self):
        _, plain = launch("Triad", "flame")
        _, checked = launch("Triad", "flame", sanitizer=Sanitizer())
        assert np.array_equal(plain, checked)


class TestInvariants:
    def test_scoreboard_bad_register_index(self):
        from repro.isa import Reg

        def corrupt(gpu, cycle):
            warp = gpu.sms[0].warps[0]
            warp.pending[Reg(999)] = cycle + 5

        with pytest.raises(SanitizerError) as err:
            launch("Triad", "flame", injector=_CorruptAt(50, corrupt),
                   sanitizer=Sanitizer())
        assert err.value.invariant == "scoreboard"
        assert err.value.sm_id == 0
        assert err.value.cycle >= 50

    def test_stack_non_nested_mask(self):
        def corrupt(gpu, cycle):
            warp = gpu.sms[0].warps[0]
            # A child entry activating a lane its parent masked off can
            # only come from corruption.
            parent = warp.stack[-1].mask.copy()
            parent[0] = False
            child = np.zeros_like(parent)
            child[0] = True
            warp.stack.append(StackEntry(0, warp.pc, parent))
            warp.stack.append(StackEntry(0, warp.pc, child))

        with pytest.raises(SanitizerError) as err:
            launch("Triad", "flame", injector=_CorruptAt(50, corrupt),
                   sanitizer=Sanitizer())
        assert err.value.invariant == "simt-stack"
        assert err.value.warp_id is not None

    def test_stack_pc_out_of_range(self):
        def corrupt(gpu, cycle):
            warp = gpu.sms[0].warps[0]
            warp.stack[-1].pc = -3

        with pytest.raises(SanitizerError) as err:
            launch("Triad", "flame", injector=_CorruptAt(50, corrupt),
                   sanitizer=Sanitizer())
        assert err.value.invariant == "simt-stack"

    def test_rpt_entry_off_region_start(self):
        def corrupt(gpu, cycle):
            rpt = gpu.sms[0].resilience.rpt
            warp = gpu.sms[0].warps[0]
            kernel = warp.kernel
            starts = {0}
            for i, inst in enumerate(kernel.instructions):
                if inst.op is Op.RB:
                    starts.update((i, i + 1))
            bad = next(i for i in range(len(kernel.instructions))
                       if i not in starts)
            rpt.entries[warp.id].pc = bad

        with pytest.raises(SanitizerError) as err:
            launch("Triad", "flame", injector=_CorruptAt(50, corrupt),
                   sanitizer=Sanitizer())
        assert err.value.invariant == "rpt-region-start"

    def test_rbq_enqueue_monotonicity(self):
        class CorruptRbq:
            fired = False

            def tick(self, gpu, cycle):
                if self.fired:
                    return
                for rbq in gpu.sms[0].resilience._rbqs.values():
                    if len(rbq._entries) >= 2:
                        # Swap enqueue stamps: the conveyor can only
                        # move forward, so this is unreachable state.
                        a, b = rbq._entries[0], rbq._entries[1]
                        a.enqueued_at, b.enqueued_at = (b.enqueued_at,
                                                        a.enqueued_at)
                        self.fired = True
                        return

            def next_event(self, cycle):
                return cycle + 1 if not self.fired else 1 << 62

        with pytest.raises(SanitizerError) as err:
            launch("SGEMM", "flame", injector=CorruptRbq(),
                   sanitizer=Sanitizer())
        assert err.value.invariant == "rbq-conveyor"

    def test_error_carries_context_in_message(self):
        def corrupt(gpu, cycle):
            gpu.sms[0].warps[0].stack[-1].pc = -3

        with pytest.raises(SanitizerError, match=r"sanitizer\[simt-stack\]"
                                                 r" at cycle \d+ \(sm0"):
            launch("Triad", "flame", injector=_CorruptAt(50, corrupt),
                   sanitizer=Sanitizer())


class TestNullRuntimeTolerance:
    def test_baseline_scheme_skips_flame_invariants(self):
        """No RPT/RBQ on a baseline GPU: the sanitizer checks what
        exists and does not crash on the null runtime."""
        sanitizer = Sanitizer()
        result, _ = launch("SGEMM", "baseline", sanitizer=sanitizer)
        assert sanitizer.checks > 0
        assert result.cycles > 0
