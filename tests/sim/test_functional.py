"""Lane-level value semantics of every opcode."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.isa import (AtomOp, CmpOp, Imm, Instruction, Op, Pred, Reg, Space,
                       Special)
from repro.sim import LaneContext, execute

WARP = 32


def make_ctx(num_regs=8, num_preds=4):
    specials = {s: np.arange(WARP, dtype=float) for s in Special}
    return LaneContext(num_regs, num_preds, WARP, specials,
                       np.array([3.0, 7.0]))


def full():
    return np.ones(WARP, dtype=bool)


def run(inst, ctx=None, active=None, gmem=None, smem=None):
    ctx = ctx or make_ctx()
    return ctx, execute(inst, ctx, active if active is not None else full(),
                        gmem if gmem is not None else np.zeros(128),
                        smem if smem is not None else np.zeros(64))


class TestArithmetic:
    @pytest.mark.parametrize("op,a,b,expect", [
        (Op.ADD, 3.0, 4.0, 7.0),
        (Op.SUB, 3.0, 4.0, -1.0),
        (Op.MUL, 3.0, 4.0, 12.0),
        (Op.DIV, 8.0, 2.0, 4.0),
        (Op.MIN, 3.0, 4.0, 3.0),
        (Op.MAX, 3.0, 4.0, 4.0),
        (Op.REM, 7.0, 3.0, 1.0),
        (Op.AND, 6.0, 3.0, 2.0),
        (Op.OR, 6.0, 3.0, 7.0),
        (Op.XOR, 6.0, 3.0, 5.0),
        (Op.SHL, 3.0, 2.0, 12.0),
        (Op.SHR, 12.0, 2.0, 3.0),
    ])
    def test_binary_ops(self, op, a, b, expect):
        ctx, _ = run(Instruction(op=op, dst=Reg(0),
                                 srcs=(Imm(a), Imm(b))))
        assert (ctx.regs[0] == expect).all()

    def test_div_by_zero_is_zero(self):
        ctx, _ = run(Instruction(op=Op.DIV, dst=Reg(0),
                                 srcs=(Imm(5.0), Imm(0.0))))
        assert (ctx.regs[0] == 0.0).all()

    def test_rem_by_zero_is_zero(self):
        ctx, _ = run(Instruction(op=Op.REM, dst=Reg(0),
                                 srcs=(Imm(5.0), Imm(0.0))))
        assert (ctx.regs[0] == 0.0).all()

    def test_mad(self):
        ctx, _ = run(Instruction(op=Op.MAD, dst=Reg(0),
                                 srcs=(Imm(2.0), Imm(3.0), Imm(4.0))))
        assert (ctx.regs[0] == 10.0).all()

    @pytest.mark.parametrize("op,fn", [
        (Op.SQRT, np.sqrt), (Op.EXP, np.exp), (Op.LOG, np.log),
        (Op.SIN, np.sin), (Op.COS, np.cos),
    ])
    def test_sfu_matches_numpy(self, op, fn):
        ctx = make_ctx()
        ctx.regs[1] = np.linspace(0.5, 3.0, WARP)
        run(Instruction(op=op, dst=Reg(0), srcs=(Reg(1),)), ctx)
        assert np.allclose(ctx.regs[0], fn(ctx.regs[1]))

    def test_sqrt_negative_clamped(self):
        ctx, _ = run(Instruction(op=Op.SQRT, dst=Reg(0), srcs=(Imm(-4.0),)))
        assert (ctx.regs[0] == 0.0).all()

    def test_special_registers_readable(self):
        ctx, _ = run(Instruction(op=Op.MOV, dst=Reg(0),
                                 srcs=(Special.LANEID,)))
        assert np.array_equal(ctx.regs[0], np.arange(WARP))

    def test_selp(self):
        ctx = make_ctx()
        ctx.preds[0] = np.arange(WARP) < 10
        run(Instruction(op=Op.SELP, dst=Reg(0),
                        srcs=(Imm(1.0), Imm(2.0), Pred(0))), ctx)
        assert (ctx.regs[0][:10] == 1.0).all()
        assert (ctx.regs[0][10:] == 2.0).all()


class TestPredicates:
    def test_setp(self):
        ctx, _ = run(Instruction(op=Op.SETP, dst=Pred(0), cmp=CmpOp.LT,
                                 srcs=(Special.LANEID, Imm(5.0))))
        assert ctx.preds[0].sum() == 5

    def test_pred_logic(self):
        ctx = make_ctx()
        ctx.preds[1] = np.arange(WARP) < 16
        ctx.preds[2] = np.arange(WARP) % 2 == 0
        run(Instruction(op=Op.PAND, dst=Pred(0),
                        srcs=(Pred(1), Pred(2))), ctx)
        assert ctx.preds[0].sum() == 8
        run(Instruction(op=Op.PNOT, dst=Pred(3), srcs=(Pred(1),)), ctx)
        assert ctx.preds[3].sum() == 16


class TestMasking:
    def test_inactive_lanes_keep_values(self):
        ctx = make_ctx()
        ctx.regs[0][:] = 42.0
        active = np.arange(WARP) < 8
        execute(Instruction(op=Op.MOV, dst=Reg(0), srcs=(Imm(1.0),)),
                ctx, active, np.zeros(8), np.zeros(8))
        assert (ctx.regs[0][:8] == 1.0).all()
        assert (ctx.regs[0][8:] == 42.0).all()

    def test_guard_composes_with_active(self):
        ctx = make_ctx()
        ctx.preds[0] = np.arange(WARP) % 2 == 0
        active = np.arange(WARP) < 16
        execute(Instruction(op=Op.MOV, dst=Reg(0), srcs=(Imm(1.0),),
                            guard=Pred(0)), ctx, active,
                np.zeros(8), np.zeros(8))
        written = ctx.regs[0] == 1.0
        assert written.sum() == 8  # even lanes below 16

    def test_inverted_guard(self):
        ctx = make_ctx()
        ctx.preds[0] = np.arange(WARP) < 4
        execute(Instruction(op=Op.MOV, dst=Reg(0), srcs=(Imm(1.0),),
                            guard=Pred(0), guard_sense=False),
                ctx, full(), np.zeros(8), np.zeros(8))
        assert (ctx.regs[0][:4] == 0.0).all()
        assert (ctx.regs[0][4:] == 1.0).all()


class TestMemory:
    def test_gather_load(self):
        gmem = np.arange(100, dtype=float)
        ctx = make_ctx()
        ctx.regs[1] = np.arange(WARP) * 2.0
        _, access = run(Instruction(op=Op.LD, dst=Reg(0), srcs=(Reg(1),),
                                    space=Space.GLOBAL, offset=1),
                        ctx, gmem=gmem)
        assert np.array_equal(ctx.regs[0], np.arange(WARP) * 2 + 1)
        assert access.space is Space.GLOBAL
        assert not access.is_store

    def test_scatter_store(self):
        gmem = np.zeros(128)
        ctx = make_ctx()
        ctx.regs[1] = np.arange(WARP, dtype=float)
        ctx.regs[2] = np.arange(WARP, dtype=float) * 10
        run(Instruction(op=Op.ST, srcs=(Reg(1), Reg(2)),
                        space=Space.GLOBAL), ctx, gmem=gmem)
        assert np.array_equal(gmem[:WARP], np.arange(WARP) * 10)

    def test_param_load_broadcasts(self):
        ctx, access = run(Instruction(op=Op.LD, dst=Reg(0),
                                      srcs=(Imm(1.0),), space=Space.PARAM))
        assert (ctx.regs[0] == 7.0).all()
        assert access is None

    def test_shared_isolated_from_global(self):
        gmem, smem = np.zeros(64), np.zeros(64)
        ctx = make_ctx()
        ctx.regs[1] = np.zeros(WARP)
        run(Instruction(op=Op.ST, srcs=(Reg(1), Imm(5.0)),
                        space=Space.SHARED), ctx, gmem=gmem, smem=smem)
        assert smem[0] == 5.0
        assert gmem[0] == 0.0

    def test_out_of_bounds_raises(self):
        from repro.errors import SimError

        ctx = make_ctx()
        ctx.regs[1] = np.full(WARP, 1000.0)
        with pytest.raises(SimError):
            run(Instruction(op=Op.LD, dst=Reg(0), srcs=(Reg(1),),
                            space=Space.GLOBAL), ctx)

    def test_fully_masked_access_returns_none(self):
        ctx = make_ctx()
        _, access = run(Instruction(op=Op.LD, dst=Reg(0), srcs=(Reg(1),),
                                    space=Space.GLOBAL), ctx,
                        active=np.zeros(WARP, dtype=bool))
        assert access is None


class TestAtomics:
    def test_atomic_add_serializes_lanes(self):
        gmem = np.zeros(8)
        ctx = make_ctx()
        ctx.regs[1] = np.zeros(WARP)  # all lanes hit address 0
        _, access = run(Instruction(op=Op.ATOM, dst=Reg(0),
                                    srcs=(Reg(1), Imm(1.0)),
                                    space=Space.GLOBAL,
                                    atom_op=AtomOp.ADD), ctx, gmem=gmem)
        assert gmem[0] == WARP
        assert access.is_atomic
        # Old values are the serial prefix sums.
        assert np.array_equal(np.sort(ctx.regs[0]), np.arange(WARP))

    @pytest.mark.parametrize("atom_op,expect", [
        (AtomOp.MAX, 31.0), (AtomOp.MIN, 0.0), (AtomOp.EXCH, 31.0),
    ])
    def test_other_atomics(self, atom_op, expect):
        gmem = np.zeros(8)
        if atom_op is AtomOp.MIN:
            gmem[0] = 99.0
        ctx = make_ctx()
        ctx.regs[1] = np.zeros(WARP)
        ctx.regs[2] = np.arange(WARP, dtype=float)
        run(Instruction(op=Op.ATOM, dst=Reg(0), srcs=(Reg(1), Reg(2)),
                        space=Space.GLOBAL, atom_op=atom_op),
            ctx, gmem=gmem)
        assert gmem[0] == expect


class TestPropertyBased:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=WARP, max_size=WARP),
           st.lists(st.floats(-1e6, 1e6), min_size=WARP, max_size=WARP))
    def test_add_matches_numpy(self, a, b):
        ctx = make_ctx()
        ctx.regs[1] = np.array(a)
        ctx.regs[2] = np.array(b)
        run(Instruction(op=Op.ADD, dst=Reg(0), srcs=(Reg(1), Reg(2))), ctx)
        assert np.array_equal(ctx.regs[0], ctx.regs[1] + ctx.regs[2])

    @given(st.integers(0, 2**31), st.integers(0, 2**31))
    def test_xor_is_involution(self, a, key):
        ctx = make_ctx()
        ctx.regs[1] = np.full(WARP, float(a))
        run(Instruction(op=Op.XOR, dst=Reg(2),
                        srcs=(Reg(1), Imm(float(key)))), ctx)
        run(Instruction(op=Op.XOR, dst=Reg(3),
                        srcs=(Reg(2), Imm(float(key)))), ctx)
        assert np.array_equal(ctx.regs[3], ctx.regs[1])
