"""SimStats accounting and merging."""

from repro.isa import FuClass
from repro.sim import SimStats


class TestCounters:
    def test_count_issue_classifies(self):
        stats = SimStats()
        stats.count_issue(FuClass.ALU, shadow=False, ckpt=False)
        stats.count_issue(FuClass.MEM, shadow=False, ckpt=True)
        stats.count_issue(FuClass.ALU, shadow=True, ckpt=False)
        assert stats.instructions == 3
        assert stats.shadow_instructions == 1
        assert stats.ckpt_instructions == 1
        assert stats.by_fu[FuClass.ALU] == 2

    def test_avg_region_size(self):
        stats = SimStats()
        assert stats.avg_region_size == 0.0
        stats.verified_regions = 4
        stats.region_instructions = 50
        assert stats.avg_region_size == 12.5

    def test_ipc(self):
        stats = SimStats()
        stats.instructions = 100
        stats.cycles = 400
        assert stats.ipc == 0.25

    def test_l1_miss_rate_empty(self):
        assert SimStats().l1_miss_rate == 0.0


class TestMerge:
    def test_merge_sums_counts_keeps_max_cycles(self):
        a, b = SimStats(), SimStats()
        a.instructions, b.instructions = 10, 20
        a.cycles, b.cycles = 100, 80
        a.by_fu[FuClass.ALU] = 5
        b.by_fu[FuClass.ALU] = 7
        a.merge(b)
        assert a.instructions == 30
        assert a.cycles == 100          # wall time, not a sum
        assert a.by_fu[FuClass.ALU] == 12

    def test_as_dict_round_trip_fields(self):
        stats = SimStats()
        stats.instructions = 5
        stats.by_fu[FuClass.SFU] = 5
        data = stats.as_dict()
        assert data["instructions"] == 5
        assert data["by_fu"] == {"sfu": 5}
        assert "avg_region_size" in data and "ipc" in data
