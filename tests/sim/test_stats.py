"""SimStats accounting and merging."""

from dataclasses import fields

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import FuClass
from repro.sim import SimStats
from repro.sim.stats import _MERGE_DICT, _MERGE_MAX, STALL_CAUSES


class TestCounters:
    def test_count_issue_classifies(self):
        stats = SimStats()
        stats.count_issue(FuClass.ALU, shadow=False, ckpt=False)
        stats.count_issue(FuClass.MEM, shadow=False, ckpt=True)
        stats.count_issue(FuClass.ALU, shadow=True, ckpt=False)
        assert stats.instructions == 3
        assert stats.shadow_instructions == 1
        assert stats.ckpt_instructions == 1
        assert stats.by_fu[FuClass.ALU] == 2

    def test_avg_region_size(self):
        stats = SimStats()
        assert stats.avg_region_size == 0.0
        stats.verified_regions = 4
        stats.region_instructions = 50
        assert stats.avg_region_size == 12.5

    def test_ipc(self):
        stats = SimStats()
        stats.instructions = 100
        stats.cycles = 400
        assert stats.ipc == 0.25

    def test_l1_miss_rate_empty(self):
        assert SimStats().l1_miss_rate == 0.0


class TestMerge:
    def test_merge_sums_counts_keeps_max_cycles(self):
        a, b = SimStats(), SimStats()
        a.instructions, b.instructions = 10, 20
        a.cycles, b.cycles = 100, 80
        a.by_fu[FuClass.ALU] = 5
        b.by_fu[FuClass.ALU] = 7
        a.merge(b)
        assert a.instructions == 30
        assert a.cycles == 100          # wall time, not a sum
        assert a.by_fu[FuClass.ALU] == 12

    def test_as_dict_round_trip_fields(self):
        stats = SimStats()
        stats.instructions = 5
        stats.by_fu[FuClass.SFU] = 5
        data = stats.as_dict()
        assert data["instructions"] == 5
        assert data["by_fu"] == {"sfu": 5}
        assert "avg_region_size" in data and "ipc" in data

    def test_merge_policies_name_real_fields(self):
        names = {f.name for f in fields(SimStats)}
        assert set(_MERGE_MAX) <= names
        assert set(_MERGE_DICT) <= names

    def test_every_field_merged_exactly_once(self):
        """Exhaustive audit over the dataclass field list: ints sum
        (or max for wall-clock-like fields), dicts merge key-wise,
        by_fu Counter-updates — no counter silently dropped."""
        a, b = SimStats(), SimStats()
        expected = {}
        for offset, f in enumerate(fields(SimStats)):
            if f.name == "by_fu":
                a.by_fu[FuClass.ALU] = 3
                b.by_fu[FuClass.ALU] = 4
                b.by_fu[FuClass.MEM] = 5
                expected[f.name] = {FuClass.ALU: 7, FuClass.MEM: 5}
            elif f.name in _MERGE_DICT:
                setattr(a, f.name, {"x": {"k": 1}} if f.name ==
                        "warp_stalls" else {"k": 1})
                setattr(b, f.name, {"x": {"k": 2}} if f.name ==
                        "warp_stalls" else {"k": 2, "m": 3})
                expected[f.name] = ({"x": {"k": 3}} if f.name ==
                                    "warp_stalls" else {"k": 3, "m": 3})
            else:
                # Distinct per-field values so a swapped assignment in
                # merge() cannot cancel out.
                lo, hi = 10 + offset, 1000 + offset * 7
                setattr(a, f.name, hi)
                setattr(b, f.name, lo)
                expected[f.name] = (hi if f.name in _MERGE_MAX
                                    else hi + lo)
        a.merge(b)
        for f in fields(SimStats):
            assert getattr(a, f.name) == expected[f.name], f.name


class TestStallLedger:
    def test_count_stall_books_both_ledgers(self):
        stats = SimStats()
        stats.count_stall("barrier", 3)
        stats.count_stall("barrier", 3, cycles=4)
        stats.count_stall("memory_latency", -1)
        assert stats.stall_cycles == {"barrier": 5, "memory_latency": 1}
        assert stats.warp_stalls == {3: {"barrier": 5},
                                     -1: {"memory_latency": 1}}

    def test_clone_is_deep(self):
        stats = SimStats()
        stats.count_stall("barrier", 0)
        stats.by_fu[FuClass.ALU] = 1
        dup = stats.clone()
        dup.count_stall("barrier", 0)
        dup.count_stall("rollback", 1)
        dup.by_fu[FuClass.ALU] += 1
        assert stats.stall_cycles == {"barrier": 1}
        assert stats.warp_stalls == {0: {"barrier": 1}}
        assert stats.by_fu[FuClass.ALU] == 1


_ledgers = st.dictionaries(
    st.sampled_from(STALL_CAUSES), st.integers(0, 1 << 20), max_size=4)
_warp_ledgers = st.dictionaries(
    st.integers(-1, 7), _ledgers, max_size=4)


class TestMergeProperties:
    @settings(max_examples=50, deadline=None)
    @given(xs=st.lists(_warp_ledgers, min_size=1, max_size=4))
    def test_merge_preserves_totals(self, xs):
        """Merging per-SM blocks in any grouping preserves every
        (warp, cause) total, and clone/as_dict round-trip the ledgers."""
        blocks = []
        for ledger in xs:
            stats = SimStats()
            for warp_id, causes in ledger.items():
                for cause, cycles in causes.items():
                    stats.count_stall(cause, warp_id, cycles)
            blocks.append(stats)
        total = SimStats()
        for block in blocks:
            total.merge(block.clone())   # merge must not alias sources
        expected: dict = {}
        for ledger in xs:
            for warp_id, causes in ledger.items():
                for cause, cycles in causes.items():
                    bucket = expected.setdefault(warp_id, {})
                    bucket[cause] = bucket.get(cause, 0) + cycles
        assert total.warp_stalls == expected
        flat: dict = {}
        for causes in expected.values():
            for cause, cycles in causes.items():
                flat[cause] = flat.get(cause, 0) + cycles
        assert total.stall_cycles == flat
        # Round-trip: clone and as_dict expose identical ledgers, and
        # mutating the clone leaves the original untouched.
        dup = total.clone()
        assert dup.as_dict() == total.as_dict()
        dup.count_stall("rollback", 99)
        assert 99 not in total.warp_stalls
        for block in blocks:   # sources never aliased into the merge
            for warp_id, causes in block.warp_stalls.items():
                assert causes is not total.warp_stalls.get(warp_id)
