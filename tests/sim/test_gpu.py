"""GPU top level: launch checking, occupancy, timing behaviour,
determinism, and agreement with the sequential reference interpreter."""

import numpy as np
import pytest

from repro.arch import GTX480
from repro.errors import LaunchError, SimError
from repro.isa import CmpOp, KernelBuilder
from repro.sim import Gpu, LaunchConfig, occupancy_blocks, run_kernel
from tests.conftest import interpret_kernel


class TestLaunchValidation:
    def test_param_count_checked(self, saxpy_kernel):
        with pytest.raises(LaunchError):
            run_kernel(saxpy_kernel,
                       LaunchConfig(grid=(1, 1), block=(32, 1),
                                    params=(1.0,)), np.zeros(64))

    def test_memory_dtype_checked(self, saxpy_kernel):
        with pytest.raises(LaunchError):
            run_kernel(saxpy_kernel,
                       LaunchConfig(grid=(1, 1), block=(32, 1),
                                    params=(8, 1.0, 0, 16)),
                       np.zeros(64, dtype=np.float32))

    def test_bad_geometry(self):
        with pytest.raises(LaunchError):
            LaunchConfig(grid=(0, 1), block=(32, 1))
        with pytest.raises(LaunchError):
            LaunchConfig(grid=(1, 1), block=(64, 32))  # > 1024 threads


class TestOccupancy:
    def _kernel(self, shared=0):
        b = KernelBuilder("k", num_params=0, shared_words=shared)
        b.st_global(b.tid_x(), 1.0)
        return b.build()

    def test_block_limit(self):
        launch = LaunchConfig(grid=(64, 1), block=(32, 1))
        blocks = occupancy_blocks(GTX480, self._kernel(), launch,
                                  regs_per_thread=8)
        assert blocks == GTX480.max_blocks_per_sm

    def test_warp_limit(self):
        launch = LaunchConfig(grid=(64, 1), block=(512, 1))  # 16 warps
        blocks = occupancy_blocks(GTX480, self._kernel(), launch, 8)
        assert blocks == GTX480.max_warps_per_sm // 16

    def test_register_limit(self):
        launch = LaunchConfig(grid=(64, 1), block=(256, 1))
        few = occupancy_blocks(GTX480, self._kernel(), launch, 8)
        many = occupancy_blocks(GTX480, self._kernel(), launch, 60)
        assert many < few

    def test_shared_limit(self):
        launch = LaunchConfig(grid=(64, 1), block=(32, 1))
        blocks = occupancy_blocks(GTX480, self._kernel(shared=8192),
                                  launch, 8)
        assert blocks == 1

    def test_unfittable_kernel_rejected(self):
        launch = LaunchConfig(grid=(1, 1), block=(1024, 1))
        with pytest.raises(LaunchError):
            occupancy_blocks(GTX480, self._kernel(), launch,
                             regs_per_thread=200)


class TestExecutionSemantics:
    def test_matches_reference_interpreter(self, saxpy_kernel):
        launch = LaunchConfig(grid=(4, 1), block=(64, 1),
                              params=(200, 2.5, 0, 256))
        mem = np.zeros(512)
        mem[:200] = np.arange(200.0)
        mem[256:456] = 1.0
        sim_mem = mem.copy()
        run_kernel(saxpy_kernel, launch, sim_mem)
        ref_mem = interpret_kernel(saxpy_kernel, launch, mem)
        assert np.allclose(sim_mem, ref_mem)

    def test_loop_kernel_matches_reference(self, loop_kernel):
        launch = LaunchConfig(grid=(2, 1), block=(64, 1),
                              params=(100, 0, 128))
        mem = np.zeros(512)
        mem[:100] = np.arange(100) / 3.0
        mem[128:228] = 1.0
        sim_mem = mem.copy()
        run_kernel(loop_kernel, launch, sim_mem)
        ref_mem = interpret_kernel(loop_kernel, launch, mem)
        assert np.allclose(sim_mem, ref_mem)

    def test_partial_warp(self):
        b = KernelBuilder("k")
        b.st_global(b.tid_x(), 1.0)
        mem = np.zeros(64)
        run_kernel(b.build(), LaunchConfig(grid=(1, 1), block=(40, 1)), mem)
        assert mem[:40].sum() == 40
        assert mem[40:].sum() == 0

    def test_2d_blocks(self):
        b = KernelBuilder("k", num_params=1)
        w = b.params(1)[0]
        x = b.global_index()
        y = b.global_index_y()
        b.st_global(b.add(b.mul(y, w), x), 1.0)
        mem = np.zeros(512)
        run_kernel(b.build(), LaunchConfig(grid=(2, 2), block=(8, 4),
                                           params=(16,)), mem)
        assert mem[:16 * 8].sum() == 16 * 8


class TestCycleBudget:
    def test_exhausted_budget_raises_sim_timeout(self, saxpy_kernel):
        from repro.errors import SimTimeout

        launch = LaunchConfig(grid=(4, 1), block=(64, 1),
                              params=(200, 2.5, 0, 256))
        with pytest.raises(SimTimeout) as info:
            run_kernel(saxpy_kernel, launch, np.zeros(512), max_cycles=3)
        assert info.value.cycles > 3
        assert isinstance(info.value, SimError)  # stays catchable as before

    def test_sufficient_budget_is_inert(self, saxpy_kernel):
        launch = LaunchConfig(grid=(4, 1), block=(64, 1),
                              params=(200, 2.5, 0, 256))
        free = run_kernel(saxpy_kernel, launch, np.zeros(512))
        budgeted = run_kernel(saxpy_kernel, launch, np.zeros(512),
                              max_cycles=free.cycles + 10)
        assert budgeted.cycles == free.cycles

    def test_invalid_budget_rejected(self, saxpy_kernel):
        launch = LaunchConfig(grid=(4, 1), block=(64, 1),
                              params=(200, 2.5, 0, 256))
        with pytest.raises(LaunchError):
            run_kernel(saxpy_kernel, launch, np.zeros(512), max_cycles=0)


class TestTimingBehaviour:
    def test_deterministic(self, saxpy_kernel):
        launch = LaunchConfig(grid=(4, 1), block=(64, 1),
                              params=(200, 2.5, 0, 256))
        cycles = []
        for _ in range(2):
            mem = np.zeros(512)
            cycles.append(run_kernel(saxpy_kernel, launch, mem).cycles)
        assert cycles[0] == cycles[1]

    def test_more_work_takes_longer(self, saxpy_kernel):
        short = LaunchConfig(grid=(2, 1), block=(64, 1),
                             params=(100, 1.0, 0, 128))
        long = LaunchConfig(grid=(16, 1), block=(64, 1),
                            params=(1000, 1.0, 0, 1024))
        c_short = run_kernel(saxpy_kernel, short, np.zeros(4096)).cycles
        c_long = run_kernel(saxpy_kernel, long, np.zeros(4096)).cycles
        assert c_long > c_short

    def test_cache_hits_speed_up_reuse(self):
        """Re-reading the same line repeatedly must beat streaming."""
        def make(streaming):
            b = KernelBuilder("k", num_params=0)
            i = b.global_index()
            acc = b.mov(0.0)
            with b.loop(0, 8) as t:
                if streaming:
                    # fresh lines every iteration and thread
                    addr = b.and_(b.mad(t, 997.0, b.mul(i, 53.0)), 4095.0)
                else:
                    addr = b.and_(i, 31.0)  # one hot line per warp
                v = b.ld_global(addr)
                acc = b.add(acc, v, dst=acc)
            b.st_global(b.add(i, 4096.0), acc)
            return b.build()

        launch = LaunchConfig(grid=(4, 1), block=(64, 1))
        hot = run_kernel(make(False), launch, np.zeros(8192))
        cold = run_kernel(make(True), launch, np.zeros(8192))
        assert hot.stats.l1_misses < cold.stats.l1_misses
        assert hot.cycles < cold.cycles

    def test_bank_conflicts_detected(self):
        def make(conflict):
            b = KernelBuilder("k", num_params=0, shared_words=1024)
            tid = b.tid_x()
            addr = b.mul(tid, 32.0) if conflict else b.mov(tid)
            b.st_shared(addr, tid)
            v = b.ld_shared(addr)
            b.st_global(tid, v)
            return b.build()

        launch = LaunchConfig(grid=(1, 1), block=(32, 1))
        good = run_kernel(make(False), launch, np.zeros(64))
        bad = run_kernel(make(True), launch, np.zeros(64))
        assert good.stats.shared_bank_conflicts == 0
        assert bad.stats.shared_bank_conflicts > 0
        assert bad.cycles > good.cycles

    def test_coalescing_reduces_transactions(self):
        def make(stride):
            b = KernelBuilder("k", num_params=0)
            i = b.global_index()
            v = b.ld_global(b.mul(i, float(stride)))
            b.st_global(b.add(i, 8192.0), v)
            return b.build()

        launch = LaunchConfig(grid=(1, 1), block=(32, 1))
        dense = run_kernel(make(1), launch, np.zeros(16384))
        sparse = run_kernel(make(33), launch, np.zeros(16384))
        assert dense.stats.global_transactions < \
            sparse.stats.global_transactions

    def test_stats_sanity(self, saxpy_kernel):
        launch = LaunchConfig(grid=(2, 1), block=(64, 1),
                              params=(100, 1.0, 0, 128))
        result = run_kernel(saxpy_kernel, launch, np.zeros(512))
        stats = result.stats
        assert stats.instructions > 0
        assert stats.cycles == result.cycles
        assert 0 < stats.ipc
        assert stats.blocks_launched == 2
        assert stats.warps_launched == 4


class TestBarriers:
    def test_barrier_orders_shared_accesses(self, barrier_kernel):
        launch = LaunchConfig(grid=(3, 1), block=(64, 1), params=(0, 192))
        mem = np.zeros(512)
        mem[:192] = np.arange(192.0)
        run_kernel(barrier_kernel, launch, mem)
        for blk in range(3):
            seg = mem[192 + blk * 64:192 + (blk + 1) * 64]
            assert np.array_equal(seg, np.arange(blk * 64,
                                                 (blk + 1) * 64)[::-1])

    def test_barrier_counter_monotonic(self, barrier_kernel):
        launch = LaunchConfig(grid=(1, 1), block=(64, 1), params=(0, 64))
        gpu = Gpu()
        mem = np.zeros(256)
        mem[:64] = 1.0
        gpu.launch(barrier_kernel, launch, mem)
        # all warps saw exactly one barrier
        # (warps are gone after retirement; the run completing at all is
        # the real assertion — a counter bug deadlocks and raises)
