"""SM-level behaviour: issue rules, LSU serialization, fast-forward,
region accounting, and the resilience hook surface."""

import numpy as np
import pytest

from repro.arch import GTX480
from repro.isa import CmpOp, KernelBuilder, Op
from repro.sim import (Gpu, LaunchConfig, NEVER, ResilienceRuntime,
                       run_kernel)


class TestIssueRules:
    def test_dependent_instructions_stall(self):
        """A chain of dependent adds cannot reach IPC 1 on one warp."""
        b = KernelBuilder("chain")
        v = b.mov(0.0)
        for _ in range(32):
            v = b.add(v, 1.0, dst=v)
        b.st_global(b.tid_x(), v)
        result = run_kernel(b.build(),
                            LaunchConfig(grid=(1, 1), block=(32, 1)),
                            np.zeros(64))
        # ALU latency 4: the chain serializes at ~1 instr / 4 cycles.
        assert result.cycles > 32 * (GTX480.alu_latency - 1)

    def test_independent_instructions_pipeline(self):
        b = KernelBuilder("wide")
        vals = [b.mul(b.tid_x(), float(i)) for i in range(32)]
        total = vals[0]
        for v in vals[1:]:
            total = b.add(total, v)
        b.st_global(b.tid_x(), total)
        wide = run_kernel(b.build(),
                          LaunchConfig(grid=(1, 1), block=(32, 1)),
                          np.zeros(64))
        # Far better throughput than the dependent chain.
        assert wide.stats.ipc > 0.3

    def test_multiple_warps_hide_latency(self):
        def kernel():
            b = KernelBuilder("lat")
            v = b.ld_global(b.tid_x())
            w = b.sqrt(v)
            b.st_global(b.add(b.global_index(), 64.0), w)
            return b.build()

        one = run_kernel(kernel(), LaunchConfig(grid=(1, 1), block=(32, 1)),
                         np.zeros(4096))
        many = run_kernel(kernel(), LaunchConfig(grid=(8, 1), block=(32, 1)),
                          np.zeros(4096))
        # 8x the work at much less than 8x the time.
        assert many.cycles < 4 * one.cycles


class TestLsuSerialization:
    def test_scattered_access_occupies_lsu_longer(self):
        def kernel(stride):
            b = KernelBuilder("s")
            addr = b.mul(b.global_index(), float(stride))
            v = b.ld_global(b.and_(addr, 2047.0))
            b.st_global(b.add(b.global_index(), 2048.0), v)
            return b.build()

        launch = LaunchConfig(grid=(4, 1), block=(64, 1))
        coalesced = run_kernel(kernel(1), launch, np.zeros(4096))
        scattered = run_kernel(kernel(67), launch, np.zeros(4096))
        assert scattered.cycles > coalesced.cycles


class TestRegionAccounting:
    def test_avg_region_size_matches_totals(self):
        from repro.compiler import compile_kernel
        from repro.core import FlameRuntime
        from repro.workloads import WORKLOADS

        instance = WORKLOADS["LBM"].instance("tiny")
        compiled = compile_kernel(instance.kernel, "flame")
        gpu = Gpu(GTX480, resilience=FlameRuntime(20))
        mem = instance.fresh_memory()
        result = gpu.launch(compiled.kernel, instance.launch, mem,
                            regs_per_thread=compiled.regs_per_thread)
        stats = result.stats
        assert stats.verified_regions > 0
        assert stats.avg_region_size == pytest.approx(
            stats.region_instructions / stats.verified_regions)
        # Boundary markers never consume issue slots.
        assert stats.by_fu.get("meta", 0) == 0


class TestResilienceHookSurface:
    def test_null_runtime_is_shared_and_inert(self):
        runtime = ResilienceRuntime()
        assert runtime.bind(None) is runtime
        assert runtime.next_event(None) == NEVER

    def test_custom_runtime_observes_boundaries(self):
        from repro.compiler import compile_kernel
        from repro.workloads import WORKLOADS

        seen = []

        class Spy(ResilienceRuntime):
            def on_reach_boundary(self, sm, warp, cycle):
                seen.append((warp.id, cycle))
                super().on_reach_boundary(sm, warp, cycle)

        instance = WORKLOADS["Triad"].instance("tiny")
        compiled = compile_kernel(instance.kernel, "renaming")
        gpu = Gpu(GTX480, resilience=Spy())
        mem = instance.fresh_memory()
        gpu.launch(compiled.kernel, instance.launch, mem,
                   regs_per_thread=compiled.regs_per_thread)
        assert seen
        assert instance.verify(mem)


class TestFastForward:
    def test_idle_gaps_are_skipped_correctly(self):
        """A single warp waiting on DRAM leaves the machine idle; the
        fast-forward must not change results or cycle counts vs. what a
        dense grid (no idle gaps) computes functionally."""
        b = KernelBuilder("ff", num_params=0)
        i = b.global_index()
        acc = b.mov(0.0)
        with b.loop(0, 4) as t:
            v = b.ld_global(b.and_(b.mad(t, 509.0, b.mul(i, 127.0)),
                                   4095.0))
            acc = b.add(acc, v, dst=acc)
        b.st_global(b.add(i, 4096.0), acc)
        kernel = b.build()
        mem = np.zeros(8192)
        mem[:4096] = np.arange(4096.0)
        result = run_kernel(kernel, LaunchConfig(grid=(1, 1), block=(32, 1)),
                            mem)
        # Idle cycles existed (single warp, DRAM misses) yet stats stay
        # consistent: issue + idle == busy time.
        assert result.stats.idle_cycles > 0
        assert result.stats.issue_cycles > 0
