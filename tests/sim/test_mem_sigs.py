"""Plan-time memory signatures (``analyze_mem_strides``): the abstract
interpretation must prove per-lane address strides exactly where they
hold for every lane pattern, and stay silent wherever divergence, lane
mixing, or launch geometry could break affinity."""

import numpy as np

from repro.arch import GTX480
from repro.isa import CmpOp, KernelBuilder, Special
from repro.sim import LaunchConfig, run_kernel
from repro.sim.plan import analyze_mem_strides, get_plan

WARP = GTX480.warp_size


def strides_of(kernel, block_x=64):
    """{timed-mem ordinal: stride} for ``kernel`` at ``block_x``."""
    records = get_plan(kernel, GTX480).records
    sigs = analyze_mem_strides(records, WARP, block_x)
    timed = [pc for pc, rec in enumerate(records) if rec.is_timed_mem]
    return {timed.index(pc): s for pc, s in sigs.items()}


class TestAffineSeeds:
    def test_unit_stride_global_index(self):
        b = KernelBuilder("unit", num_params=1)
        (ptr,) = b.params(1)
        b.st_global(b.add(ptr, b.global_index()), 1.0)
        assert strides_of(b.build()) == {0: 1}

    def test_uniform_address(self):
        b = KernelBuilder("uni", num_params=1)
        (ptr,) = b.params(1)
        b.st_global(b.mov(ptr), 1.0)
        assert strides_of(b.build()) == {0: 0}

    def test_scaled_strides(self):
        b = KernelBuilder("scaled", num_params=1)
        (ptr,) = b.params(1)
        i = b.tid_x()
        b.st_global(b.add(ptr, b.mul(i, 4.0)), 1.0)     # mul by imm
        b.st_global(b.add(ptr, b.shl(i, 3.0)), 2.0)     # shl by imm
        b.st_global(b.mad(i, -2.0, ptr), 3.0)           # mad, negative
        assert strides_of(b.build()) == {0: 4, 1: 8, 2: -2}

    def test_block_x_gates_tid_affinity(self):
        # tid.x wraps inside a warp when block_x is not a warp multiple,
        # so the same kernel proves nothing at block_x=16.
        b = KernelBuilder("gate", num_params=1)
        (ptr,) = b.params(1)
        b.st_global(b.add(ptr, b.tid_x()), 1.0)
        kernel = b.build()
        assert strides_of(kernel, block_x=64) == {0: 1}
        assert strides_of(kernel, block_x=16) == {}

    def test_loaded_data_is_irregular_unless_uniform(self):
        b = KernelBuilder("gather", num_params=2)
        idx_ptr, out = b.params(2)
        idx = b.ld_global(b.add(idx_ptr, b.tid_x()))   # per-lane data
        b.st_global(idx, 1.0)                          # gather: no fact
        base = b.ld_global(b.mov(idx_ptr))             # uniform load
        b.st_global(b.add(base, Special.LANEID), 2.0)  # uniform + lane
        # Ordinal 1 (the gather) proves nothing; the loads' own
        # addresses are stride 1 / 0 and the broadcast data is uniform.
        assert strides_of(b.build()) == {0: 1, 2: 0, 3: 1}


class TestDivergence:
    def test_load_inside_divergent_region_keeps_stride(self):
        # The guard-tail pattern every bounds-checked workload uses: the
        # address is computed *inside* the region that reads it.
        b = KernelBuilder("tail", num_params=2)
        n, ptr = b.params(2)
        i = b.global_index()
        with b.if_(b.setp(CmpOp.LT, i, n)):
            b.st_global(b.add(ptr, i), 1.0)
        assert strides_of(b.build()) == {0: 1}

    def test_region_write_dies_at_reconvergence(self):
        # A register written under divergence is a lane blend once the
        # inactive lanes rejoin: the post-region store proves nothing,
        # while an address unrelated to the region is unaffected.
        b = KernelBuilder("blend", num_params=2)
        n, ptr = b.params(2)
        i = b.global_index()
        addr = b.add(ptr, i)
        with b.if_(b.setp(CmpOp.LT, i, n)):
            b.add(addr, 64.0, dst=addr)
        b.st_global(addr, 1.0)                  # blended: no fact
        b.st_global(b.add(ptr, i), 2.0)         # untouched: stride 1
        assert strides_of(b.build()) == {1: 1}

    def test_divergent_guarded_write_degrades(self):
        b = KernelBuilder("guarded", num_params=2)
        n, ptr = b.params(2)
        i = b.global_index()
        addr = b.add(ptr, i)
        b.mov(ptr, dst=addr, guard=b.setp(CmpOp.LT, i, n))
        b.st_global(addr, 1.0)
        assert strides_of(b.build()) == {}

    def test_uniform_guarded_write_joins(self):
        # An all-or-nothing (uniform-guard) write: old and new facts
        # share stride 1, so the stride survives the maybe-write.
        b = KernelBuilder("unig", num_params=2)
        n, ptr = b.params(2)
        i = b.tid_x()
        addr = b.add(ptr, i)
        p = b.setp(CmpOp.LT, Special.CTAID_X, n)  # warp-uniform
        b.add(addr, 32.0, dst=addr, guard=p)
        b.st_global(addr, 1.0)
        assert strides_of(b.build()) == {0: 1}

    def test_divergent_while_loop(self):
        # while_ lowers to a divergent forward branch bracketing the
        # body plus a *uniform* backedge, so the region rules apply:
        # in-loop facts survive (every active lane shares the iteration
        # count), loop-written registers die at reconvergence, and
        # untouched uniforms pass through.
        b = KernelBuilder("divloop", num_params=2)
        n, ptr = b.params(2)
        i = b.global_index()
        with b.while_(lambda: b.setp(CmpOp.LT, i, n)):
            b.ld_global(b.add(ptr, i))       # in-region: stride 1
            b.add(i, 32.0, dst=i)
        b.st_global(b.add(ptr, i), 1.0)      # post-reconv blend: no fact
        b.st_global(b.mov(ptr), 2.0)         # uniform: stride 0
        assert strides_of(b.build()) == {0: 1, 2: 0}

    def test_divergent_backward_branch_bails(self):
        # A *guarded* backward branch (do-while shape) has no
        # reconvergence bracketing: the analysis gives up wholesale.
        b = KernelBuilder("dowhile", num_params=2)
        n, ptr = b.params(2)
        i = b.global_index()
        head = b.fresh_label("HEAD")
        b.label(head)
        b.add(i, 1.0, dst=i)
        b.bra(head, guard=b.setp(CmpOp.LT, i, n))
        b.st_global(b.mov(ptr), 1.0)
        assert strides_of(b.build()) == {}


class TestLoops:
    def test_uniform_loop_preserves_stride(self):
        # base + k*step with a uniform counter: the loop-carried base
        # degrades to unknown at the backedge meet but the lane stride
        # survives, which is the LBM/SGEMM hot-loop pattern.
        b = KernelBuilder("loop", num_params=2)
        n, ptr = b.params(2)
        addr = b.add(ptr, b.tid_x())
        with b.loop(0.0, n):
            b.ld_global(addr)
            b.add(addr, 128.0, dst=addr)
        assert strides_of(b.build()) == {0: 1}

    def test_lane_carried_loop_increment_degrades(self):
        # The increment itself has stride 1, so the carried stride grows
        # every iteration: the backedge meet must drop the fact.
        b = KernelBuilder("grow", num_params=2)
        n, ptr = b.params(2)
        addr = b.add(ptr, b.tid_x())
        with b.loop(0.0, n):
            b.ld_global(addr)
            b.add(addr, Special.LANEID, dst=addr)
        assert strides_of(b.build()) == {}


class TestClosedFormTiming:
    """The end-to-end guarantee: signature-driven closed forms replace
    per-access coalescing without moving a single counter or byte."""

    def _identical(self, kernel, launch, mem):
        fast, ref = mem.copy(), mem.copy()
        a = run_kernel(kernel, launch, fast, fast=True)
        b = run_kernel(kernel, launch, ref, fast=False)
        assert a.cycles == b.cycles
        assert a.stats.global_transactions == b.stats.global_transactions
        assert a.stats.shared_bank_conflicts == b.stats.shared_bank_conflicts
        assert fast.tobytes() == ref.tobytes()

    def test_strided_sweep_matrix(self):
        # One kernel per stride covering every closed form: contiguous
        # (±1), full-warp line-stride sweeps, and a conflict-prone
        # shared-memory column walk.
        for stride in (1, -1, 32, 64, -32, 2, 8):
            b = KernelBuilder(f"sweep_{stride}", num_params=1)
            (ptr,) = b.params(1)
            i = b.tid_x()
            addr = b.mad(i, float(stride), ptr)
            b.st_global(addr, i)
            b.ld_global(addr)
            kernel = b.build()
            launch = LaunchConfig(grid=(1, 1), block=(64, 1),
                                  params=(2048.0,))
            self._identical(kernel, launch, np.zeros(8192))

    def test_shared_bank_degrees(self):
        for stride in (1, 2, 4, 8, 16, 32):
            b = KernelBuilder(f"bank_{stride}", num_params=0,
                              shared_words=2048)
            i = b.tid_x()
            addr = b.mul(i, float(stride))
            b.st_shared(addr, i)
            b.ld_shared(addr)
            b.st_global(i, 0.0)
            kernel = b.build()
            launch = LaunchConfig(grid=(1, 1), block=(64, 1), params=())
            self._identical(kernel, launch, np.zeros(256))

    def test_guard_masked_subset_falls_back(self):
        # A masked access is a lane *subset* of the affine vector; the
        # endpoint checks must reject the non-contiguous survivors and
        # fall back, keeping timing identical.
        b = KernelBuilder("subset", num_params=1)
        (ptr,) = b.params(1)
        i = b.tid_x()
        odd = b.setp(CmpOp.GE, b.rem(i, 2.0), 1.0)
        b.st_global(b.add(ptr, i), 1.0, guard=odd)
        kernel = b.build()
        launch = LaunchConfig(grid=(1, 1), block=(64, 1), params=(64.0,))
        self._identical(kernel, launch, np.zeros(256))
