"""Stall-cause attribution: conservation, exactness, and persistence.

The ledger invariant under test: every cycle an SM spends with at least
one resident block is either an issue cycle or exactly one attributed
stall cycle, per SM, at all times — including across the fast-forward
skip path and checkpoint restore.
"""

import numpy as np
import pytest

from repro.sim import SCHEDULERS, Sanitizer
from repro.sim.stats import STALL_CAUSES
from repro.workloads import workload_by_name
from tests.conftest import run_compiled

SCHEMES = ["baseline", "flame"]


def _assert_conserved(stats) -> None:
    attributed = sum(stats.stall_cycles.values())
    assert stats.issue_cycles + attributed == stats.active_cycles
    assert stats.idle_cycles == attributed
    per_warp: dict[str, int] = {}
    for ledger in stats.warp_stalls.values():
        for cause, count in ledger.items():
            per_warp[cause] = per_warp.get(cause, 0) + count
    assert per_warp == stats.stall_cycles
    assert set(stats.stall_cycles) <= set(STALL_CAUSES)


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
@pytest.mark.parametrize("scheme", SCHEMES)
def test_conservation_all_schedulers(scheme, scheduler):
    """issue + attributed stalls == active cycles, with the per-cycle
    sanitizer validating the same equalities at every cycle."""
    instance = workload_by_name("SGEMM").instance("tiny")
    result, _, verified = run_compiled(instance, scheme,
                                       scheduler=scheduler,
                                       sanitizer=Sanitizer())
    assert verified
    _assert_conserved(result.stats)
    assert result.stats.issue_cycles > 0


@pytest.mark.parametrize("workload", ["SGEMM", "Triad"])
@pytest.mark.parametrize("scheme", SCHEMES)
def test_fast_and_reference_ledgers_identical(workload, scheme):
    """The planned fast path and the decode-per-issue reference path
    attribute every idle cycle to the same cause and the same warp."""
    instance = workload_by_name(workload).instance("tiny")
    fast, _, _ = run_compiled(instance, scheme, fast=True)
    ref, _, _ = run_compiled(instance, scheme, fast=False)
    assert fast.cycles == ref.cycles
    assert fast.stats.stall_cycles == ref.stats.stall_cycles
    assert fast.stats.warp_stalls == ref.stats.warp_stalls


def test_attribution_is_meaningful():
    """A streaming kernel stalls mostly on memory; flame adds
    verify-wait cycles on top."""
    instance = workload_by_name("Triad").instance("tiny")
    base, _, _ = run_compiled(instance, "baseline")
    stalls = base.stats.stall_cycles
    assert stalls.get("memory_latency", 0) > 0
    assert stalls.get("memory_latency", 0) >= stalls.get("scoreboard_raw", 0)
    flame, _, _ = run_compiled(instance, "flame")
    assert flame.stats.stall_cycles.get("verify_wait", 0) > 0


def test_ledger_survives_checkpoint_restore():
    """Restoring a mid-run checkpoint reproduces the full ledger
    (stall dicts ride the SimStats clone, and the open stall-cause
    context re-derives on the first post-restore tick)."""
    from repro.sim import CheckpointRecorder

    instance = workload_by_name("SGEMM").instance("tiny")
    reference, _, _ = run_compiled(instance, "flame")
    recorder = CheckpointRecorder()
    run_compiled(instance, "flame", recorder=recorder)
    middle = recorder.checkpoints[len(recorder.checkpoints) // 2]
    assert 0 < middle.cycle < reference.cycles
    restored, _, _ = run_compiled(instance, "flame", resume_from=middle,
                                  sanitizer=Sanitizer())
    assert restored.cycles == reference.cycles
    assert restored.stats.stall_cycles == reference.stats.stall_cycles
    assert restored.stats.warp_stalls == reference.stats.warp_stalls


def test_conservation_with_injection():
    """A strike's rollback window books cycles under 'rollback' and the
    ledger still balances exactly."""
    from repro.core.injection import FaultInjector

    instance = workload_by_name("SGEMM").instance("tiny")
    injector = FaultInjector(strike_cycles=[400], wcdl=20, seed=3)
    result, _, _ = run_compiled(instance, "flame", injector=injector,
                                sanitizer=Sanitizer())
    _assert_conserved(result.stats)
    if any(r.landed and not r.missed for r in injector.records):
        assert result.stats.stall_cycles.get("rollback", 0) > 0


def test_traced_run_is_cycle_identical():
    """Attaching a tracer must not change simulation outcomes."""
    from repro.obs import Tracer

    instance = workload_by_name("SGEMM").instance("tiny")
    plain, mem_a, _ = run_compiled(instance, "flame")
    tracer = Tracer()
    traced, mem_b, _ = run_compiled(instance, "flame", tracer=tracer)
    assert plain.cycles == traced.cycles
    assert np.array_equal(mem_a, mem_b)
    # A tracer disables superblock batching (per-issue events), so only
    # the batching telemetry may differ; every architectural counter
    # must be identical.
    from repro.sim.stats import SUPERBLOCK_TELEMETRY

    plain_stats = {k: v for k, v in plain.stats.as_dict().items()
                   if k not in SUPERBLOCK_TELEMETRY}
    traced_stats = {k: v for k, v in traced.stats.as_dict().items()
                    if k not in SUPERBLOCK_TELEMETRY}
    assert plain_stats == traced_stats
    assert tracer.emitted > 0
    names = {evt.name for evt in tracer.events}
    assert {"issue", "block_dispatch", "block_retire"} <= names
