"""Zero-copy golden sharing: export/attach/hydrate byte-equality,
read-only enforcement, kill switch, and graceful degradation.

The invariant under test is the one the campaign's statistics rest on:
a golden adopted from shared memory is byte-identical to the golden the
worker would have derived locally, so trial outcomes and journal rows
cannot depend on whether sharing was active.
"""

import os
import pickle

import numpy as np
import pytest

import repro.core.campaign as campaign
import repro.core.goldens as goldens
from repro.core.campaign import (CampaignSpec, _golden, golden_key,
                                 run_trial)
from repro.core.goldens import (ENABLE_ENV, MANIFEST_ENV, export_goldens,
                                release_goldens, shared_entry)
from repro.sim import plain_equal


def spec_for(scheme="baseline", trials=2, **kwargs):
    return CampaignSpec(workloads=("Triad",), schemes=(scheme,),
                        trials=trials, seed=0, scale="tiny", **kwargs)


@pytest.fixture(autouse=True)
def clean_sharing_state(tmp_path, monkeypatch):
    """Each test starts detached with an empty golden cache and leaves
    no segment, manifest, or environment residue behind."""
    campaign._GOLDEN_CACHE.clear()
    goldens._reset_attachment()
    monkeypatch.delenv(MANIFEST_ENV, raising=False)
    monkeypatch.delenv(ENABLE_ENV, raising=False)
    yield
    release_goldens()
    goldens._reset_attachment()
    campaign._GOLDEN_CACHE.clear()


def export_and_detach(trials, tmp_path):
    """Export goldens, then make this process look like a fresh worker:
    empty local cache, no attachment yet (only the env handshake)."""
    path = export_goldens(trials, manifest_dir=str(tmp_path))
    assert path is not None and os.path.exists(path)
    campaign._GOLDEN_CACHE.clear()
    goldens._reset_attachment()
    return path


class TestExportHydrate:
    def test_shared_entry_byte_equal_to_local(self, tmp_path):
        trials = spec_for().trial_specs()
        # Local derivation first (no sharing active).
        local, _ = _golden(trials[0], with_checkpoints=True)
        local_cycles, local_mem = local[1], local[2].copy()
        local_recorder = local[3]
        campaign._GOLDEN_CACHE.clear()

        export_and_detach(trials, tmp_path)
        entry = shared_entry(golden_key(trials[0]))
        assert entry is not None
        cycles, mem, recorder = entry
        assert cycles == local_cycles
        assert mem.tobytes() == local_mem.tobytes()
        assert recorder is not None
        assert len(recorder.checkpoints) == len(local_recorder.checkpoints)
        for shared_cp, local_cp in zip(recorder.checkpoints,
                                       local_recorder.checkpoints):
            assert shared_cp.cycle == local_cp.cycle
            assert shared_cp.global_mem.tobytes() == \
                local_cp.global_mem.tobytes()
            for a, b in zip(shared_cp.sms, local_cp.sms):
                assert plain_equal(a, b)

    def test_golden_adopts_shared_and_flags_it(self, tmp_path):
        trials = spec_for().trial_specs()
        export_and_detach(trials, tmp_path)
        entry, hit = _golden(trials[0], with_checkpoints=True)
        assert not hit           # first touch in this "worker"
        assert entry[4] is True  # adopted from shared memory
        # Second touch is a plain local-cache hit.
        again, hit = _golden(trials[0], with_checkpoints=True)
        assert hit and again is entry

    def test_hydrated_views_are_read_only(self, tmp_path):
        trials = spec_for().trial_specs()
        export_and_detach(trials, tmp_path)
        cycles, mem, recorder = shared_entry(golden_key(trials[0]))
        assert not mem.flags.writeable
        with pytest.raises(ValueError):
            mem[0] = 1.0
        with pytest.raises(ValueError):
            recorder.checkpoints[0].global_mem[0] = 1.0

    def test_run_trial_identical_shared_vs_local(self, tmp_path):
        trials = spec_for().trial_specs()
        local = [run_trial(t) for t in trials]
        assert all(not r.golden_shared for r in local)
        campaign._GOLDEN_CACHE.clear()

        export_and_detach(trials, tmp_path)
        shared = [run_trial(t) for t in trials]
        # Only the first trial of the cell derives (adopts) the golden;
        # the rest hit the worker-local cache.
        assert shared[0].golden_shared
        # Journal rows (as_dict strips telemetry) are byte-identical.
        for a, b in zip(local, shared):
            assert a.as_dict() == b.as_dict()


class TestDegradation:
    def test_kill_switch_disables_export(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENABLE_ENV, "0")
        trials = spec_for().trial_specs()
        assert export_goldens(trials, manifest_dir=str(tmp_path)) is None
        assert MANIFEST_ENV not in os.environ

    def test_kill_switch_disables_attach(self, tmp_path, monkeypatch):
        trials = spec_for().trial_specs()
        export_and_detach(trials, tmp_path)
        monkeypatch.setenv(ENABLE_ENV, "0")
        assert shared_entry(golden_key(trials[0])) is None

    def test_missing_manifest_degrades_to_none(self, monkeypatch):
        monkeypatch.setenv(MANIFEST_ENV, "/nonexistent/goldens.manifest")
        trials = spec_for().trial_specs()
        assert shared_entry(golden_key(trials[0])) is None
        # The failed probe is memoized, not retried per call.
        assert goldens._ATTACHED is False

    def test_unknown_key_degrades_to_none(self, tmp_path):
        trials = spec_for().trial_specs()
        export_and_detach(trials, tmp_path)
        other = spec_for(scheme="flame").trial_specs()[0]
        assert shared_entry(golden_key(other)) is None

    def test_empty_trial_list_exports_nothing(self, tmp_path):
        assert export_goldens([], manifest_dir=str(tmp_path)) is None


class TestRelease:
    def test_release_removes_manifest_and_env(self, tmp_path):
        trials = spec_for().trial_specs()
        path = export_goldens(trials, manifest_dir=str(tmp_path))
        assert os.environ.get(MANIFEST_ENV) == path
        release_goldens()
        assert MANIFEST_ENV not in os.environ
        assert not os.path.exists(path)
        release_goldens()  # idempotent

    def test_release_restores_previous_manifest(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv(MANIFEST_ENV, "earlier.manifest")
        trials = spec_for().trial_specs()
        export_goldens(trials, manifest_dir=str(tmp_path))
        release_goldens()
        assert os.environ[MANIFEST_ENV] == "earlier.manifest"

    def test_manifest_is_a_plain_pickle(self, tmp_path):
        trials = spec_for().trial_specs()
        path = export_and_detach(trials, tmp_path)
        with open(path, "rb") as handle:
            manifest = pickle.load(handle)
        assert manifest["version"] == 1
        assert set(manifest["entries"]) == {golden_key(t) for t in trials}
        for entry in manifest["entries"].values():
            for offset, dtype_str, shape in entry["arrays"]:
                assert offset % 64 == 0
                np.dtype(dtype_str)  # descriptor round-trips
