"""The Flame runtime: WCDL descheduling, verification, RPT advance,
final-region verification, and all-warp recovery."""

import numpy as np
import pytest

from repro.compiler import compile_kernel
from repro.core import FlameRuntime, flame_hardware_cost
from repro.isa import CmpOp, KernelBuilder
from repro.sim import Gpu, LaunchConfig, WarpState
from repro.arch import GTX480


def simple_instance():
    b = KernelBuilder("k", num_params=2)
    inp, outp = b.params(2)
    i = b.global_index()
    x = b.ld_global(b.add(inp, i))
    b.st_global(b.add(inp, i), b.add(x, 1.0))   # in-place: forces a cut
    b.st_global(b.add(outp, i), b.mul(x, 2.0))
    return compile_kernel(b.build(), "flame")


class TestVerificationScheduling:
    def _launch(self, wcdl):
        compiled = simple_instance()
        gpu = Gpu(GTX480, resilience=FlameRuntime(wcdl))
        mem = np.zeros(512)
        mem[:128] = np.arange(128.0)
        result = gpu.launch(compiled.kernel,
                            LaunchConfig(grid=(2, 1), block=(64, 1),
                                         params=(0, 256)),
                            mem, regs_per_thread=compiled.regs_per_thread)
        return result, mem

    def test_regions_verified(self):
        result, _ = self._launch(20)
        assert result.stats.verified_regions > 0
        assert result.stats.rbq_enqueues > 0

    def test_results_correct_under_flame(self):
        _, mem = self._launch(20)
        assert np.array_equal(mem[:128], np.arange(128.0) + 1.0)
        assert np.array_equal(mem[256:384], np.arange(128.0) * 2.0)

    def test_longer_wcdl_never_faster(self):
        fast, _ = self._launch(5)
        slow, _ = self._launch(80)
        assert slow.cycles >= fast.cycles

    def test_flame_slower_than_unprotected(self):
        compiled = simple_instance()
        launch = LaunchConfig(grid=(2, 1), block=(64, 1), params=(0, 256))

        def run(runtime):
            gpu = Gpu(GTX480, resilience=runtime) if runtime else Gpu(GTX480)
            mem = np.zeros(512)
            return gpu.launch(compiled.kernel, launch, mem,
                              regs_per_thread=compiled.regs_per_thread)

        base = run(None)
        flame = run(FlameRuntime(20))
        # The final-region verification alone costs at least one WCDL.
        assert flame.cycles >= base.cycles + 20

    def test_warp_descheduled_while_verifying(self):
        """Mid-run, some warps must sit in the RBQ state."""
        compiled = simple_instance()
        gpu = Gpu(GTX480, resilience=FlameRuntime(wcdl=200))
        mem = np.zeros(512)
        launch = LaunchConfig(grid=(2, 1), block=(64, 1), params=(0, 256))
        # Run manually for a while and inspect states.
        seen_in_rbq = []

        class Spy(FlameRuntime):
            def bind(self, sm):
                runtime = super().bind(sm)
                original = runtime.tick

                def tick(sm_, cycle):
                    original(sm_, cycle)
                    seen_in_rbq.append(any(
                        w.state is WarpState.IN_RBQ for w in sm_.warps))
                runtime.tick = tick
                return runtime

        gpu = Gpu(GTX480, resilience=Spy(wcdl=50))
        gpu.launch(compiled.kernel, launch, mem,
                   regs_per_thread=compiled.regs_per_thread)
        assert any(seen_in_rbq)


class TestHardwareCost:
    def test_paper_numbers(self):
        cost = flame_hardware_cost(GTX480, wcdl=20)
        assert cost.rbq_bits == 120       # 20 entries x 6 bits
        assert cost.rpt_bits == 1024      # 32 warps x 32-bit PC
        assert cost.sensors_per_sm == 200
        assert cost.sensor_area_overhead < 0.001

    def test_scales_with_wcdl(self):
        short = flame_hardware_cost(GTX480, wcdl=10)
        long = flame_hardware_cost(GTX480, wcdl=50)
        assert long.rbq_bits == 5 * short.rbq_bits
        assert long.sensors_per_sm < short.sensors_per_sm
