"""Fault injection and end-to-end recovery correctness.

The central claim of the paper: any sensor-detected error is corrected
by idempotent re-execution, producing output identical to a fault-free
run.  These tests corrupt live destination registers mid-flight and
check bit-exact recovery across workloads, seeds, and strike timings.
"""

import numpy as np
import pytest

from repro.compiler import compile_kernel, prepare_launch
from repro.core import FaultInjector, FlameRuntime
from repro.sim import Gpu, LaunchConfig
from repro.workloads import WORKLOADS
from repro.arch import GTX480

#: Barrier/divergence-heavy but atomic-free workloads (atomics are not
#: replayable, as in the paper's data-race-free model — Section IV).
INJECTABLE = ("SGEMM", "Triad", "LBM", "CS", "NW", "PF", "BP", "GUPS",
              "Hotspot", "SN")


def run_with_faults(abbr, strikes, seed, wcdl=20):
    workload = WORKLOADS[abbr]
    instance = workload.instance("tiny")
    compiled = compile_kernel(instance.kernel, "flame", wcdl=wcdl)

    def launch_once(injector):
        gpu = Gpu(GTX480, resilience=FlameRuntime(wcdl))
        gpu.fault_injector = injector
        mem = instance.fresh_memory()
        params, mem = prepare_launch(compiled, instance.launch.params, mem,
                                     instance.launch.num_blocks,
                                     instance.launch.threads_per_block)
        launch = LaunchConfig(grid=instance.launch.grid,
                              block=instance.launch.block, params=params)
        result = gpu.launch(compiled.kernel, launch, mem,
                            regs_per_thread=compiled.regs_per_thread)
        return result, mem

    golden_result, golden = launch_once(None)
    injector = FaultInjector(strike_cycles=strikes, wcdl=wcdl, seed=seed)
    faulty_result, faulty = launch_once(injector)
    return golden, faulty, injector, faulty_result


class TestRecoveryCorrectness:
    @pytest.mark.parametrize("abbr", INJECTABLE)
    def test_single_strike_recovers(self, abbr):
        golden, faulty, injector, _ = run_with_faults(
            abbr, strikes=[150], seed=7)
        assert np.allclose(faulty, golden), abbr
        assert len(injector.records) == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_strike_burst_recovers(self, seed):
        golden, faulty, injector, result = run_with_faults(
            "SGEMM", strikes=[100 + 83 * i for i in range(10)], seed=seed)
        assert np.allclose(faulty, golden)
        assert result.stats.recoveries == 10

    def test_detection_always_within_wcdl(self):
        _, _, injector, _ = run_with_faults(
            "Triad", strikes=[50, 200, 350], seed=3, wcdl=20)
        for record in injector.records:
            assert 1 <= record.detect_cycle - record.strike_cycle <= 20

    def test_false_positive_recovery_harmless(self):
        """A sensor firing without a landed corruption (bit-masked
        strike) still rolls back; output must stay correct."""
        golden, faulty, injector, result = run_with_faults(
            "LBM", strikes=[60, 61, 62], seed=1)
        assert np.allclose(faulty, golden)
        assert result.stats.recoveries >= 1

    def test_recovery_reexecutes_instructions(self):
        golden, faulty, injector, result = run_with_faults(
            "CS", strikes=[100, 400], seed=2)
        landed = sum(1 for r in injector.records if r.landed)
        assert np.allclose(faulty, golden)
        # Re-execution shows up as extra dynamic instructions vs golden.
        assert result.stats.recoveries == 2

    def test_strike_near_kernel_end(self):
        golden, faulty, injector, _ = run_with_faults(
            "Triad", strikes=[10_000_000], seed=0)
        # Strike beyond kernel end never fires; run is clean.
        assert np.allclose(faulty, golden)
        assert not injector.records


class TestSdcWithoutFlame:
    def test_unprotected_run_corrupts_output(self):
        """Negative control: the same strikes on a baseline GPU produce
        silent data corruption (for at least one seed)."""
        workload = WORKLOADS["Triad"]
        instance = workload.instance("tiny")
        compiled = compile_kernel(instance.kernel, "baseline")
        launch = instance.launch
        golden = instance.fresh_memory()
        Gpu(GTX480).launch(compiled.kernel, launch, golden,
                           regs_per_thread=compiled.regs_per_thread)
        corrupted_runs = 0
        for seed in range(8):
            gpu = Gpu(GTX480)
            gpu.fault_injector = FaultInjector(strike_cycles=[60, 120],
                                               wcdl=20, seed=seed)
            mem = instance.fresh_memory()
            gpu.launch(compiled.kernel, launch, mem,
                       regs_per_thread=compiled.regs_per_thread)
            if not np.allclose(mem, golden):
                corrupted_runs += 1
            assert gpu.fault_injector.undetected >= 0
        assert corrupted_runs > 0

    def test_undetected_counter(self):
        workload = WORKLOADS["Triad"]
        instance = workload.instance("tiny")
        compiled = compile_kernel(instance.kernel, "baseline")
        gpu = Gpu(GTX480)
        injector = FaultInjector(strike_cycles=[80], wcdl=20, seed=1)
        gpu.fault_injector = injector
        mem = instance.fresh_memory()
        gpu.launch(compiled.kernel, instance.launch, mem,
                   regs_per_thread=compiled.regs_per_thread)
        landed = sum(1 for r in injector.records if r.landed)
        assert injector.undetected == landed


class TestInjectorMechanics:
    def test_records_have_victims(self):
        _, _, injector, _ = run_with_faults("SGEMM", strikes=[200], seed=5)
        record = injector.records[0]
        if record.landed:
            assert record.warp_id is not None
            assert record.corrupted_reg is not None

    def test_deterministic_given_seed(self):
        a = run_with_faults("Triad", strikes=[100], seed=9)
        b = run_with_faults("Triad", strikes=[100], seed=9)
        assert a[3].cycles == b[3].cycles

    def test_bad_wcdl_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            FaultInjector(strike_cycles=[1], wcdl=0)


class _StubRuntime:
    def __init__(self):
        self.recoveries = []

    def recover(self, cycle):
        self.recoveries.append(cycle)


class _StubSm:
    def __init__(self, sm_id, runtime):
        self.id = sm_id
        self.resilience = runtime


class _StubGpu:
    def __init__(self, sms):
        self.sms = sms


class TestRecoveryAttribution:
    """Overlapping strikes on one SM: a detection event may only credit
    records whose own sensing delay has elapsed — a later strike's
    corruption can land *after* this rollback and must not be counted
    as recovered by it."""

    def _injector_with_records(self, detect_cycles, sm_id=0):
        from repro.core import InjectionRecord

        injector = FaultInjector(strike_cycles=[], wcdl=20, seed=0)
        for dc in detect_cycles:
            injector.records.append(InjectionRecord(
                strike_cycle=dc - 5, detect_cycle=dc, sm_id=sm_id,
                landed=True))
        return injector

    def test_pending_strike_not_credited_to_earlier_detection(self):
        runtime = _StubRuntime()
        gpu = _StubGpu([_StubSm(0, runtime)])
        injector = self._injector_with_records([10, 30])
        injector._detect(gpu, sm_id=0, cycle=10)
        first, second = injector.records
        assert first.recovered
        assert not second.recovered  # its own sensor has not fired yet
        assert runtime.recoveries == [10]

    def test_later_detection_credits_remaining_record(self):
        runtime = _StubRuntime()
        gpu = _StubGpu([_StubSm(0, runtime)])
        injector = self._injector_with_records([10, 30])
        injector._detect(gpu, sm_id=0, cycle=10)
        injector._detect(gpu, sm_id=0, cycle=30)
        assert all(r.recovered for r in injector.records)
        assert runtime.recoveries == [10, 30]

    def test_other_sm_records_untouched(self):
        from repro.core import InjectionRecord

        runtime = _StubRuntime()
        gpu = _StubGpu([_StubSm(0, runtime), _StubSm(1, _StubRuntime())])
        injector = self._injector_with_records([10])
        injector.records.append(InjectionRecord(
            strike_cycle=5, detect_cycle=10, sm_id=1, landed=True))
        injector._detect(gpu, sm_id=0, cycle=10)
        assert injector.records[0].recovered
        assert not injector.records[1].recovered
