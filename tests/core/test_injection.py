"""Fault injection and end-to-end recovery correctness.

The central claim of the paper: any sensor-detected error is corrected
by idempotent re-execution, producing output identical to a fault-free
run.  These tests corrupt live destination registers mid-flight and
check bit-exact recovery across workloads, seeds, and strike timings.
"""

import numpy as np
import pytest

from repro.compiler import compile_kernel, prepare_launch
from repro.core import FaultInjector, FlameRuntime
from repro.sim import Gpu, LaunchConfig
from repro.workloads import WORKLOADS
from repro.arch import GTX480

#: Barrier/divergence-heavy but atomic-free workloads (atomics are not
#: replayable, as in the paper's data-race-free model — Section IV).
INJECTABLE = ("SGEMM", "Triad", "LBM", "CS", "NW", "PF", "BP", "GUPS",
              "Hotspot", "SN")


def run_with_faults(abbr, strikes, seed, wcdl=20):
    workload = WORKLOADS[abbr]
    instance = workload.instance("tiny")
    compiled = compile_kernel(instance.kernel, "flame", wcdl=wcdl)

    def launch_once(injector):
        gpu = Gpu(GTX480, resilience=FlameRuntime(wcdl))
        gpu.fault_injector = injector
        mem = instance.fresh_memory()
        params, mem = prepare_launch(compiled, instance.launch.params, mem,
                                     instance.launch.num_blocks,
                                     instance.launch.threads_per_block)
        launch = LaunchConfig(grid=instance.launch.grid,
                              block=instance.launch.block, params=params)
        result = gpu.launch(compiled.kernel, launch, mem,
                            regs_per_thread=compiled.regs_per_thread)
        return result, mem

    golden_result, golden = launch_once(None)
    injector = FaultInjector(strike_cycles=strikes, wcdl=wcdl, seed=seed)
    faulty_result, faulty = launch_once(injector)
    return golden, faulty, injector, faulty_result


class TestRecoveryCorrectness:
    @pytest.mark.parametrize("abbr", INJECTABLE)
    def test_single_strike_recovers(self, abbr):
        golden, faulty, injector, _ = run_with_faults(
            abbr, strikes=[150], seed=7)
        assert np.allclose(faulty, golden), abbr
        assert len(injector.records) == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_strike_burst_recovers(self, seed):
        golden, faulty, injector, result = run_with_faults(
            "SGEMM", strikes=[100 + 83 * i for i in range(10)], seed=seed)
        assert np.allclose(faulty, golden)
        assert result.stats.recoveries == 10

    def test_detection_always_within_wcdl(self):
        _, _, injector, _ = run_with_faults(
            "Triad", strikes=[50, 200, 350], seed=3, wcdl=20)
        for record in injector.records:
            assert 1 <= record.detect_cycle - record.strike_cycle <= 20

    def test_false_positive_recovery_harmless(self):
        """A sensor firing without a landed corruption (bit-masked
        strike) still rolls back; output must stay correct."""
        golden, faulty, injector, result = run_with_faults(
            "LBM", strikes=[60, 61, 62], seed=1)
        assert np.allclose(faulty, golden)
        assert result.stats.recoveries >= 1

    def test_recovery_reexecutes_instructions(self):
        golden, faulty, injector, result = run_with_faults(
            "CS", strikes=[100, 400], seed=2)
        landed = sum(1 for r in injector.records if r.landed)
        assert np.allclose(faulty, golden)
        # Re-execution shows up as extra dynamic instructions vs golden.
        assert result.stats.recoveries == 2

    def test_strike_near_kernel_end(self):
        golden, faulty, injector, _ = run_with_faults(
            "Triad", strikes=[10_000_000], seed=0)
        # Strike beyond kernel end never fires; run is clean.
        assert np.allclose(faulty, golden)
        assert not injector.records


class TestSdcWithoutFlame:
    def test_unprotected_run_corrupts_output(self):
        """Negative control: the same strikes on a baseline GPU produce
        silent data corruption (for at least one seed)."""
        workload = WORKLOADS["Triad"]
        instance = workload.instance("tiny")
        compiled = compile_kernel(instance.kernel, "baseline")
        launch = instance.launch
        golden = instance.fresh_memory()
        Gpu(GTX480).launch(compiled.kernel, launch, golden,
                           regs_per_thread=compiled.regs_per_thread)
        corrupted_runs = 0
        for seed in range(8):
            gpu = Gpu(GTX480)
            gpu.fault_injector = FaultInjector(strike_cycles=[60, 120],
                                               wcdl=20, seed=seed)
            mem = instance.fresh_memory()
            gpu.launch(compiled.kernel, launch, mem,
                       regs_per_thread=compiled.regs_per_thread)
            if not np.allclose(mem, golden):
                corrupted_runs += 1
            assert gpu.fault_injector.undetected >= 0
        assert corrupted_runs > 0

    def test_undetected_counter(self):
        workload = WORKLOADS["Triad"]
        instance = workload.instance("tiny")
        compiled = compile_kernel(instance.kernel, "baseline")
        gpu = Gpu(GTX480)
        injector = FaultInjector(strike_cycles=[80], wcdl=20, seed=1)
        gpu.fault_injector = injector
        mem = instance.fresh_memory()
        gpu.launch(compiled.kernel, instance.launch, mem,
                   regs_per_thread=compiled.regs_per_thread)
        landed = sum(1 for r in injector.records if r.landed)
        assert injector.undetected == landed


class TestInjectorMechanics:
    def test_records_have_victims(self):
        _, _, injector, _ = run_with_faults("SGEMM", strikes=[200], seed=5)
        record = injector.records[0]
        if record.landed:
            assert record.warp_id is not None
            assert record.corrupted_reg is not None

    def test_deterministic_given_seed(self):
        a = run_with_faults("Triad", strikes=[100], seed=9)
        b = run_with_faults("Triad", strikes=[100], seed=9)
        assert a[3].cycles == b[3].cycles

    def test_bad_wcdl_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            FaultInjector(strike_cycles=[1], wcdl=0)


def run_site(abbr, site, strikes, seed, wcdl=20, scheme="flame",
             harden_rpt=True, harden_rbq=True, rollback_cycles=1,
             config=GTX480, sensor=None):
    """Like :func:`run_with_faults` but parameterized over the full
    multi-site fault surface."""
    workload = WORKLOADS[abbr]
    instance = workload.instance("tiny")
    compiled = compile_kernel(instance.kernel, scheme, wcdl=wcdl)

    def launch_once(injector):
        if scheme == "flame":
            gpu = Gpu(config, resilience=FlameRuntime(
                wcdl, rollback_cycles=rollback_cycles,
                harden_rpt=harden_rpt, harden_rbq=harden_rbq))
        else:
            gpu = Gpu(config)
        gpu.fault_injector = injector
        mem = instance.fresh_memory()
        params, mem = prepare_launch(compiled, instance.launch.params, mem,
                                     instance.launch.num_blocks,
                                     instance.launch.threads_per_block)
        launch = LaunchConfig(grid=instance.launch.grid,
                              block=instance.launch.block, params=params)
        result = gpu.launch(compiled.kernel, launch, mem,
                            regs_per_thread=compiled.regs_per_thread,
                            max_cycles=2_000_000)
        return result, mem

    golden_result, golden = launch_once(None)
    injector = FaultInjector(strike_cycles=strikes, wcdl=wcdl, seed=seed,
                             site=site, sensor=sensor)
    faulty_result, faulty = launch_once(injector)
    return golden, faulty, injector, faulty_result


class TestFaultSiteTaxonomy:
    def test_registry_contents(self):
        from repro.core import ALL_FAULT_SITES, FAULT_SITES

        assert ALL_FAULT_SITES == ("dest_reg", "shared_mem", "predicate",
                                   "simt_stack", "rpt", "rbq")
        assert set(FAULT_SITES) == set(ALL_FAULT_SITES)

    def test_unknown_site_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown fault site"):
            FaultInjector(strike_cycles=[1], site="cache_tag")

    def test_reregistration_rejected(self):
        from repro.core import FAULT_SITES, register_fault_site
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            register_fault_site(FAULT_SITES["dest_reg"])

    def test_custom_site_registers_and_unregisters(self):
        from repro.core import (FAULT_SITES, FaultSite, fault_site_by_name,
                                register_fault_site)

        class NopSite(FaultSite):
            name = "nop_site"

            def inject(self, injector, gpu, sm, record, rng):
                record.detail = "nop"

        try:
            register_fault_site(NopSite())
            assert fault_site_by_name("nop_site").name == "nop_site"
            FaultInjector(strike_cycles=[], site="nop_site")
        finally:
            FAULT_SITES.pop("nop_site", None)

    def test_records_carry_site(self):
        _, _, injector, _ = run_site("SGEMM", "shared_mem", [100], seed=0)
        assert all(r.site == "shared_mem" for r in injector.records)


class TestSharedMemSite:
    def test_landed_shared_strike_recovers(self):
        golden, faulty, injector, result = run_site(
            "SGEMM", "shared_mem", [100, 200, 300], seed=0)
        assert sum(r.landed for r in injector.records) >= 1
        assert np.allclose(faulty, golden)
        assert result.stats.recoveries >= 1

    @pytest.mark.parametrize("abbr,seed", [("CS", 1), ("NW", 0)])
    def test_recovers_across_workloads(self, abbr, seed):
        golden, faulty, injector, _ = run_site(
            abbr, "shared_mem", [100, 200, 300], seed=seed)
        assert sum(r.landed for r in injector.records) >= 1
        assert np.allclose(faulty, golden)

    def test_corruption_detail_names_address(self):
        _, _, injector, _ = run_site("SGEMM", "shared_mem", [100, 200, 300],
                                     seed=0)
        landed = [r for r in injector.records if r.landed]
        assert all(r.detail.startswith("shared[") for r in landed)


class TestPredicateSite:
    def test_landed_predicate_strike_recovers(self):
        # SN is the only tiny workload with non-address predicate defs.
        golden, faulty, injector, _ = run_site(
            "SN", "predicate", [100, 300, 500], seed=0)
        assert sum(r.landed for r in injector.records) >= 1
        assert np.allclose(faulty, golden)

    def test_baseline_predicate_strike_corrupts(self):
        corrupted = 0
        for seed in range(4):
            golden, faulty, injector, _ = run_site(
                "SN", "predicate", [100, 300, 500], seed=seed,
                scheme="baseline")
            if not np.allclose(faulty, golden):
                corrupted += 1
        assert corrupted > 0

    def test_address_guards_never_struck(self):
        """Every landed predicate strike must be outside the
        address-feeding taint set (hardened-AGU assumption)."""
        _, _, injector, _ = run_site("SN", "predicate", [100, 300, 500],
                                     seed=0)
        for record in injector.records:
            if record.landed:
                assert record.detail.startswith("p")


class TestSimtStackSite:
    def test_flame_rollback_restores_stack(self):
        from repro.errors import ReproError

        recovered = 0
        for seed in range(6):
            try:
                golden, faulty, injector, _ = run_site(
                    "SGEMM", "simt_stack", [200], seed=seed)
            except ReproError:
                continue  # corrupted mask crashed before detection: a DUE
            if any(r.landed for r in injector.records):
                assert np.allclose(faulty, golden)
                recovered += 1
        assert recovered >= 1


class TestFlameStructureSites:
    def test_hardened_rpt_absorbs(self):
        golden, faulty, injector, result = run_site("SGEMM", "rpt", [200],
                                                    seed=0)
        record = injector.records[0]
        assert record.absorbed and not record.landed
        # The sensor still hears the (absorbed) strike: harmless rollback.
        assert result.stats.recoveries >= 1
        assert np.allclose(faulty, golden)

    def test_hardened_rbq_absorbs(self):
        golden, faulty, injector, _ = run_site("SGEMM", "rbq", [200], seed=0)
        assert all(r.absorbed or not r.landed for r in injector.records)
        assert np.allclose(faulty, golden)

    def test_unhardened_rpt_breaks_recovery(self):
        """With RPT parity off, a corrupted recovery PC redirects the
        rollback: measurable SDC/DUE across seeds."""
        from repro.errors import ReproError

        bad = 0
        for seed in range(8):
            try:
                golden, faulty, injector, _ = run_site(
                    "SGEMM", "rpt", [200, 400], seed=seed, harden_rpt=False)
            except ReproError:
                bad += 1
                continue
            if (any(r.landed for r in injector.records)
                    and not np.allclose(faulty, golden)):
                bad += 1
        assert bad >= 2

    def test_baseline_has_no_flame_structures(self):
        golden, faulty, injector, _ = run_site("SGEMM", "rpt", [200], seed=0,
                                               scheme="baseline")
        record = injector.records[0]
        assert not record.landed and not record.absorbed
        assert record.detail == "no RPT on this scheme"
        assert np.allclose(faulty, golden)


class TestImperfectSensor:
    def test_missed_strike_never_detected(self):
        from repro.arch import SensorModel

        sensor = SensorModel(wcdl=20, miss_probability=1.0)
        golden, faulty, injector, result = run_site(
            "Triad", "dest_reg", [60, 120], seed=1, sensor=sensor)
        assert all(r.missed for r in injector.records)
        assert all(r.detect_cycle == -1 for r in injector.records)
        assert result.stats.recoveries == 0
        landed = sum(1 for r in injector.records if r.landed)
        assert injector.undetected == landed

    def test_missed_strikes_cause_sdc_under_flame(self):
        """Sensor misses degrade Flame to the unprotected case."""
        from repro.arch import SensorModel

        sensor = SensorModel(wcdl=20, miss_probability=1.0)
        corrupted = 0
        for seed in range(8):
            golden, faulty, injector, _ = run_site(
                "Triad", "dest_reg", [60, 120], seed=seed, sensor=sensor)
            if not np.allclose(faulty, golden):
                corrupted += 1
        assert corrupted > 0

    def test_sensor_overrides_injector_wcdl(self):
        from repro.arch import SensorModel

        injector = FaultInjector(strike_cycles=[], wcdl=99,
                                 sensor=SensorModel(wcdl=7))
        assert injector.wcdl == 7

    def test_jitter_can_exceed_wcdl(self):
        from repro.arch import SensorModel

        sensor = SensorModel(wcdl=5, jitter_cycles=40)
        _, _, injector, _ = run_site("Triad", "dest_reg",
                                     [50, 100, 150, 200], seed=3,
                                     wcdl=5, sensor=sensor)
        delays = [r.detect_cycle - r.strike_cycle
                  for r in injector.records if not r.missed]
        assert delays and max(delays) > 5


class TestStrikeCycleValidation:
    def test_negative_cycle_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match=">= 0"):
            FaultInjector(strike_cycles=[10, -3])

    @pytest.mark.parametrize("bad", [1.5, "100", None, True])
    def test_non_integer_rejected(self, bad):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="integers"):
            FaultInjector(strike_cycles=[bad])

    def test_numpy_integers_accepted(self):
        injector = FaultInjector(
            strike_cycles=list(np.array([30, 10, 20], dtype=np.int64)))
        assert injector.strike_cycles == [10, 20, 30]
        assert all(type(c) is int for c in injector.strike_cycles)


class TestAddressDefCache:
    def test_cache_hit_returns_same_set(self):
        workload = WORKLOADS["Triad"]
        kernel = compile_kernel(workload.instance("tiny").kernel,
                                "flame", wcdl=20).kernel
        injector = FaultInjector(strike_cycles=[])
        first = injector._address_defs(kernel)
        assert injector._address_defs(kernel) is first

    def test_stale_id_reuse_not_served(self):
        """id() values are recycled after garbage collection; a cache
        entry must only be served to the exact kernel object that
        populated it."""
        workload = WORKLOADS["Triad"]
        kernel = compile_kernel(workload.instance("tiny").kernel,
                                "flame", wcdl=20).kernel
        other = compile_kernel(WORKLOADS["SGEMM"].instance("tiny").kernel,
                               "flame", wcdl=20).kernel
        injector = FaultInjector(strike_cycles=[])
        poison = {123456}
        import weakref
        injector._addr_cache[id(kernel)] = (weakref.ref(other), poison)
        assert injector._address_defs(kernel) != poison

    def test_dead_referent_recomputed(self):
        import gc
        import weakref

        workload = WORKLOADS["Triad"]
        kernel = compile_kernel(workload.instance("tiny").kernel,
                                "flame", wcdl=20).kernel
        injector = FaultInjector(strike_cycles=[])
        victim = compile_kernel(workload.instance("tiny").kernel,
                                "flame", wcdl=20).kernel
        injector._addr_cache[id(kernel)] = (weakref.ref(victim), {999})
        del victim
        gc.collect()
        assert injector._address_defs(kernel) != {999}


class TestRecoveryStorm:
    """Satellite of the multi-site fault surface: a strike landing after
    a detection but before its rollback completes must trigger its own
    (coalesced) recovery, never be silently credited to the first."""

    def _one_sm_config(self):
        import dataclasses

        return dataclasses.replace(GTX480, sim_sms=1)

    def test_nested_detection_coalesces(self):
        golden, faulty, injector, result = run_site(
            "SGEMM", "dest_reg", [100, 102], seed=3, wcdl=1,
            rollback_cycles=5, config=self._one_sm_config())
        # wcdl=1 pins both detections (101, 103) inside the first
        # rollback window [101, 106): the second coalesces.
        assert [r.detect_cycle for r in injector.records] == [101, 103]
        assert result.stats.recoveries == 1
        assert result.stats.coalesced_recoveries == 1
        assert result.stats.detected_errors == 2
        assert np.allclose(faulty, golden)

    def test_spaced_detections_recover_independently(self):
        golden, faulty, injector, result = run_site(
            "SGEMM", "dest_reg", [100, 150], seed=3, wcdl=1,
            rollback_cycles=5, config=self._one_sm_config())
        assert result.stats.recoveries == 2
        assert result.stats.coalesced_recoveries == 0
        assert result.stats.detected_errors == 2
        assert np.allclose(faulty, golden)

    def test_second_strike_not_credited_to_first_detection(self):
        """The second record's own sensing delay must elapse before it
        is marked recovered — it is never attributed to the rollback
        already in flight when it struck."""
        _, _, injector, _ = run_site(
            "SGEMM", "dest_reg", [100, 102], seed=3, wcdl=1,
            rollback_cycles=5, config=self._one_sm_config())
        first, second = injector.records
        assert second.detect_cycle > first.detect_cycle
        assert first.recovered and second.recovered

    def test_rollback_cycles_validated(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            FlameRuntime(wcdl=20, rollback_cycles=0)


class _StubRuntime:
    def __init__(self):
        self.recoveries = []

    def recover(self, cycle):
        self.recoveries.append(cycle)


class _StubSm:
    def __init__(self, sm_id, runtime):
        self.id = sm_id
        self.resilience = runtime


class _StubGpu:
    def __init__(self, sms):
        self.sms = sms


class TestRecoveryAttribution:
    """Overlapping strikes on one SM: a detection event may only credit
    records whose own sensing delay has elapsed — a later strike's
    corruption can land *after* this rollback and must not be counted
    as recovered by it."""

    def _injector_with_records(self, detect_cycles, sm_id=0):
        from repro.core import InjectionRecord

        injector = FaultInjector(strike_cycles=[], wcdl=20, seed=0)
        for dc in detect_cycles:
            injector.records.append(InjectionRecord(
                strike_cycle=dc - 5, detect_cycle=dc, sm_id=sm_id,
                landed=True))
        return injector

    def test_pending_strike_not_credited_to_earlier_detection(self):
        runtime = _StubRuntime()
        gpu = _StubGpu([_StubSm(0, runtime)])
        injector = self._injector_with_records([10, 30])
        injector._detect(gpu, sm_id=0, cycle=10)
        first, second = injector.records
        assert first.recovered
        assert not second.recovered  # its own sensor has not fired yet
        assert runtime.recoveries == [10]

    def test_later_detection_credits_remaining_record(self):
        runtime = _StubRuntime()
        gpu = _StubGpu([_StubSm(0, runtime)])
        injector = self._injector_with_records([10, 30])
        injector._detect(gpu, sm_id=0, cycle=10)
        injector._detect(gpu, sm_id=0, cycle=30)
        assert all(r.recovered for r in injector.records)
        assert runtime.recoveries == [10, 30]

    def test_other_sm_records_untouched(self):
        from repro.core import InjectionRecord

        runtime = _StubRuntime()
        gpu = _StubGpu([_StubSm(0, runtime), _StubSm(1, _StubRuntime())])
        injector = self._injector_with_records([10])
        injector.records.append(InjectionRecord(
            strike_cycle=5, detect_cycle=10, sm_id=1, landed=True))
        injector._detect(gpu, sm_id=0, cycle=10)
        assert injector.records[0].recovered
        assert not injector.records[1].recovered
