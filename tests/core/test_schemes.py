"""The pluggable resilience-scheme registry: lookup, registration,
validation, and the campaign spec's scheme vetting."""

import pytest

from repro.core import (AbftSgemmRuntime, CampaignSpec, DmrRuntime,
                        PartialThreadRuntime, RUNTIME_SCHEMES, build_runtime,
                        campaign_schemes, default_campaign_schemes,
                        register_scheme, runtime_scheme_by_name)
from repro.core.runtime import FlameRuntime
from repro.errors import ConfigError
from repro.sim import NULL_RESILIENCE


def test_builtin_roster():
    """Every scheme the issue names resolves, with the right bindings."""
    assert runtime_scheme_by_name("baseline").compile_scheme == "baseline"
    assert runtime_scheme_by_name("flame").compile_scheme == "flame"
    dmr = runtime_scheme_by_name("dmr")
    assert dmr.compile_scheme == "duplication_renaming"
    assert dmr.detects and dmr.campaign
    partial = runtime_scheme_by_name("partial_thread")
    assert partial.compile_scheme == "renaming"
    abft = runtime_scheme_by_name("abft_sgemm")
    assert abft.workloads == ("SGEMM", "SGEMM_ABFT")
    assert abft.supports_workload("SGEMM_ABFT")
    assert not abft.supports_workload("LBM")
    # Unrestricted schemes support anything.
    assert dmr.supports_workload("LBM")


def test_unknown_name_lists_runnable_schemes():
    with pytest.raises(ConfigError) as err:
        runtime_scheme_by_name("tmr")
    message = str(err.value)
    assert "unknown resilience scheme 'tmr'" in message
    # The suggestion list is the campaign-runnable set, not the full
    # table: compile-only timing variants would be dead ends here.
    assert "flame" in message and "dmr" in message
    assert "hybrid_renaming" not in message


def test_campaign_schemes_excludes_compile_only():
    runnable = campaign_schemes()
    assert "baseline" in runnable and "abft_sgemm" in runnable
    assert "renaming" not in runnable
    assert "hybrid_checkpointing" not in runnable
    # Compile-only entries are still resolvable (timing studies use
    # them), just not campaignable.
    assert not runtime_scheme_by_name("renaming").campaign


def test_default_campaign_schemes_are_runnable():
    defaults = default_campaign_schemes()
    assert defaults == ("baseline", "flame")
    for name in defaults:
        assert runtime_scheme_by_name(name).campaign


def test_build_runtime_types():
    assert build_runtime("baseline") is NULL_RESILIENCE
    assert isinstance(build_runtime("flame", wcdl=24), FlameRuntime)
    assert isinstance(build_runtime("dmr"), DmrRuntime)
    assert isinstance(build_runtime("partial_thread"), PartialThreadRuntime)
    assert isinstance(build_runtime("abft_sgemm"), AbftSgemmRuntime)


def test_register_scheme_round_trip():
    @register_scheme("test_scheme_rt", compile_scheme="renaming",
                     detects=True, workloads=["SGEMM"],
                     description="test-only entry")
    def _factory(wcdl=20, harden_rpt=True, harden_rbq=True):
        return NULL_RESILIENCE

    try:
        scheme = runtime_scheme_by_name("test_scheme_rt")
        assert scheme.factory is _factory
        assert scheme.workloads == ("SGEMM",)  # normalized to tuple
        assert scheme.build(wcdl=32) is NULL_RESILIENCE
        assert "test_scheme_rt" in campaign_schemes()
    finally:
        del RUNTIME_SCHEMES["test_scheme_rt"]


def test_register_scheme_rejects_duplicates():
    with pytest.raises(ConfigError, match="already registered"):
        register_scheme("flame", compile_scheme="flame",
                        description="imposter")(lambda **kw: None)


def test_register_scheme_validates_compile_binding():
    with pytest.raises(ConfigError):
        register_scheme("test_scheme_bad", compile_scheme="no_such_pass",
                        description="broken binding")(lambda **kw: None)
    assert "test_scheme_bad" not in RUNTIME_SCHEMES


def test_registry_listing_order_is_registration_order():
    names = list(RUNTIME_SCHEMES)
    assert names.index("baseline") < names.index("flame")
    assert names.index("flame") < names.index("dmr")
    runnable = campaign_schemes()
    assert runnable.index("dmr") < runnable.index("partial_thread")


def _spec(**kwargs):
    defaults = dict(workloads=("Triad",), schemes=("baseline", "flame"),
                    sites=("dest_reg",), trials=1, seed=7, scale="tiny")
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def test_campaign_spec_rejects_unknown_scheme():
    with pytest.raises(ConfigError, match="unknown resilience scheme"):
        _spec(schemes=("baseline", "nope"))


def test_campaign_spec_rejects_duplicate_scheme():
    with pytest.raises(ConfigError, match="more than once"):
        _spec(schemes=("flame", "baseline", "flame"))


def test_campaign_spec_rejects_compile_only_scheme():
    with pytest.raises(ConfigError, match="compile-only"):
        _spec(schemes=("baseline", "renaming"))


def test_campaign_spec_rejects_workload_incompatible_scheme():
    with pytest.raises(ConfigError, match="only supports workloads"):
        _spec(schemes=("baseline", "abft_sgemm"))
    # ...but accepts the pairing on a supported workload.
    spec = _spec(workloads=("SGEMM_ABFT",),
                 schemes=("baseline", "abft_sgemm"))
    assert spec.schemes == ("baseline", "abft_sgemm")


def test_campaign_spec_accepts_all_runtime_competitors():
    spec = _spec(schemes=("baseline", "flame", "dmr", "partial_thread"))
    assert len(spec.schemes) == 4


def test_runtime_instances_are_fresh_per_build():
    first = build_runtime("dmr")
    second = build_runtime("dmr")
    assert first is not second
