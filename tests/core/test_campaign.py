"""Monte Carlo campaign engine: sampling determinism, outcome
classification, journal crash-safety, and aggregation.

The statistical backbone of the resilience claim: trials must be pure
functions of (campaign seed, workload, scheme, index) so a resumed
campaign aggregates byte-identically to an uninterrupted one.
"""

import json
import os

import pytest

from repro.core.campaign import (CampaignJournal, CampaignSpec, DUE_CRASH,
                                 DUE_HANG, INFRA_ERROR, MASKED, OUTCOMES,
                                 RECOVERED, SDC, TrialResult, aggregate,
                                 dedupe_results, merge_cells, run_trial,
                                 wilson_interval)
from repro.errors import ConfigError


def spec_for(scheme, trials=4, seed=0, **kwargs):
    return CampaignSpec(workloads=("Triad",), schemes=(scheme,),
                        trials=trials, seed=seed, scale="tiny", **kwargs)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CampaignSpec(workloads=())
        with pytest.raises(ConfigError):
            CampaignSpec(workloads=("Triad",), trials=0)
        with pytest.raises(ConfigError):
            CampaignSpec(workloads=("Triad",), strikes_per_trial=0)

    def test_campaign_id_stable_and_distinct(self):
        a = spec_for("baseline")
        assert a.campaign_id() == spec_for("baseline").campaign_id()
        assert a.campaign_id() != spec_for("baseline",
                                           seed=1).campaign_id()
        assert a.campaign_id() != spec_for("flame").campaign_id()

    def test_trial_specs_cover_all_cells(self):
        spec = CampaignSpec(workloads=("Triad", "SGEMM"),
                            schemes=("baseline", "flame"), trials=3)
        trials = spec.trial_specs()
        assert len(trials) == 12
        assert len({t.key for t in trials}) == 12

    def test_trial_rng_is_coordinate_pure(self):
        spec = spec_for("baseline")
        a, b = spec.trial_specs()[2], spec_for("baseline").trial_specs()[2]
        assert a.rng().integers(1 << 30) == b.rng().integers(1 << 30)
        # Different coordinates draw independently.
        c = spec.trial_specs()[3]
        assert a.rng().integers(1 << 30) != c.rng().integers(1 << 30)


class TestClassification:
    def test_known_sdc_trial(self):
        # Deterministic anchor: baseline Triad, seed 0, index 1 lands a
        # strike that corrupts memory with nothing to recover it.
        trial = spec_for("baseline", trials=2).trial_specs()[1]
        result = run_trial(trial)
        assert result.outcome == SDC
        assert result.landed >= 1
        assert result.recoveries == 0

    def test_known_recovered_trial(self):
        # Flame Triad, seed 0, index 6: landed strike, sensed within
        # WCDL, rolled back to bit-exact output.
        trial = spec_for("flame", trials=7).trial_specs()[6]
        result = run_trial(trial)
        assert result.outcome == RECOVERED
        assert result.landed >= 1
        assert result.recoveries >= 1

    def test_cycle_budget_exhaustion_is_due_hang(self):
        # A budget far below the fault-free cycle count forces the
        # watchdog: the trial must classify, not raise.
        trial = spec_for("baseline", max_cycles_factor=0.0001,
                         min_cycle_budget=5).trial_specs()[0]
        result = run_trial(trial)
        assert result.outcome == DUE_HANG
        assert "cycle budget" in result.detail

    def test_trials_are_deterministic(self):
        trial = spec_for("flame", trials=3).trial_specs()[2]
        assert run_trial(trial).as_dict() == run_trial(trial).as_dict()

    def test_strikes_sampled_inside_execution_window(self):
        for trial in spec_for("baseline", trials=6).trial_specs():
            result = run_trial(trial)
            assert result.golden_cycles > 0
            for cycle in result.strike_cycles:
                assert 1 <= cycle < result.golden_cycles

    def test_flame_never_unrecovered(self):
        for trial in spec_for("flame", trials=8).trial_specs():
            assert run_trial(trial).outcome in (MASKED, RECOVERED)


class TestWilson:
    def test_bounds(self):
        lo, hi = wilson_interval(0, 200)
        assert lo == 0.0 and 0.0 < hi < 0.05

    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(17, 100)
        assert lo < 0.17 < hi

    def test_degenerate(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)
        lo, hi = wilson_interval(10, 10)
        assert lo > 0.6 and hi == 1.0

    def test_narrows_with_n(self):
        narrow = wilson_interval(50, 1000)
        wide = wilson_interval(5, 100)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]


def _result(index, outcome=MASKED, workload="Triad", scheme="baseline"):
    return TrialResult(workload=workload, scheme=scheme, index=index,
                       outcome=outcome)


class TestAggregate:
    def test_counts_and_rates(self):
        results = [_result(0), _result(1, SDC), _result(2, SDC),
                   _result(3, RECOVERED)]
        (cell,) = aggregate(results)
        assert cell.trials == 4
        assert cell.counts[SDC] == 2
        assert cell.unrecovered == 2
        rate, lo, hi = cell.rates[SDC]
        assert rate == 0.5 and lo < 0.5 < hi
        assert set(cell.counts) == set(OUTCOMES)

    def test_order_independent_and_deduped(self):
        results = [_result(i, SDC if i % 3 == 0 else MASKED)
                   for i in range(9)]
        shuffled = results[::-1] + results  # duplicates, reversed order
        a = [c.as_dict() for c in aggregate(results)]
        b = [c.as_dict() for c in aggregate(shuffled)]
        assert json.dumps(a, sort_keys=True) == json.dumps(b,
                                                           sort_keys=True)

    def test_cells_sorted(self):
        results = [_result(0, workload="Triad", scheme="flame"),
                   _result(0, workload="SGEMM", scheme="baseline")]
        cells = aggregate(results)
        assert [(c.workload, c.scheme) for c in cells] == [
            ("SGEMM", "baseline"), ("Triad", "flame")]


class TestJournal:
    def test_round_trip(self, tmp_path):
        spec = spec_for("baseline")
        journal = CampaignJournal(str(tmp_path / "j.jsonl"))
        journal.write_header(spec)
        journal.append(_result(0))
        journal.append(_result(1, SDC))
        loaded = journal.load(spec)
        assert [r.index for r in loaded] == [0, 1]
        assert loaded[1].outcome == SDC

    def test_truncated_tail_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(str(path))
        journal.append(_result(0))
        journal.append(_result(1))
        with open(path, "a") as handle:
            handle.write('{"type": "trial", "workload": "Tri')  # killed
        loaded = journal.load()
        assert [r.index for r in loaded] == [0, 1]

    def test_header_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.write_header(spec_for("baseline", seed=0))
        with pytest.raises(ConfigError):
            journal.load(spec_for("baseline", seed=99))

    def test_missing_file_is_empty(self, tmp_path):
        journal = CampaignJournal(str(tmp_path / "nope.jsonl"))
        assert journal.load() == []
        assert not journal.has_header()

    def test_unknown_records_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(str(path))
        journal.append(_result(0))
        with open(path, "a") as handle:
            handle.write(json.dumps({"type": "trial",
                                     "mystery_field": 1}) + "\n")
            handle.write("not json at all\n")
        assert [r.index for r in journal.load()] == [0]


class TestMultiSiteSpec:
    def test_site_validation(self):
        with pytest.raises(ConfigError):
            spec_for("flame", sites=())
        with pytest.raises(ConfigError, match="unknown fault site"):
            spec_for("flame", sites=("dest_reg", "alu_pipe"))
        with pytest.raises(ConfigError):
            spec_for("flame", sensor_miss_probability=1.0)
        with pytest.raises(ConfigError):
            spec_for("flame", sensor_jitter_cycles=-1)

    def test_sites_multiply_cells_and_trials(self):
        spec = CampaignSpec(workloads=("Triad", "SGEMM"),
                            schemes=("baseline", "flame"), trials=3,
                            sites=("dest_reg", "shared_mem", "rpt"))
        assert len(spec.cells()) == 12
        trials = spec.trial_specs()
        assert len(trials) == 36
        assert len({t.key for t in trials}) == 36
        assert {t.site for t in trials} == {"dest_reg", "shared_mem", "rpt"}

    def test_campaign_id_distinguishes_knobs(self):
        base = spec_for("flame")
        assert base.campaign_id() != spec_for(
            "flame", sites=("shared_mem",)).campaign_id()
        assert base.campaign_id() != spec_for(
            "flame", sensor_miss_probability=0.1).campaign_id()
        assert base.campaign_id() != spec_for(
            "flame", sanitize=True).campaign_id()
        assert base.campaign_id() != spec_for(
            "flame", harden_rpt=False).campaign_id()

    def test_rng_streams_differ_per_site(self):
        a = spec_for("flame", sites=("dest_reg",)).trial_specs()[0]
        b = spec_for("flame", sites=("shared_mem",)).trial_specs()[0]
        assert a.index == b.index and a.workload == b.workload
        assert a.rng().integers(1 << 30) != b.rng().integers(1 << 30)

    def test_trial_specs_carry_knobs(self):
        spec = spec_for("flame", sites=("rpt",),
                        sensor_miss_probability=0.25,
                        sensor_jitter_cycles=4, sanitize=True,
                        harden_rpt=False)
        trial = spec.trial_specs()[0]
        assert trial.site == "rpt"
        assert trial.sensor_miss_probability == 0.25
        assert trial.sensor_jitter_cycles == 4
        assert trial.sanitize and not trial.harden_rpt


class TestMultiSiteTrials:
    def test_flame_recovers_shared_mem_site(self):
        spec = CampaignSpec(workloads=("SGEMM",), schemes=("flame",),
                            trials=3, scale="tiny", sites=("shared_mem",))
        for trial in spec.trial_specs():
            result = run_trial(trial)
            assert result.site == "shared_mem"
            assert result.outcome in (MASKED, RECOVERED)

    def test_hardened_rpt_site_never_unrecovered(self):
        spec = CampaignSpec(workloads=("Triad",), schemes=("flame",),
                            trials=4, scale="tiny", sites=("rpt",))
        for trial in spec.trial_specs():
            assert run_trial(trial).outcome in (MASKED, RECOVERED)

    def test_unhardened_rpt_shows_failures(self):
        spec = CampaignSpec(workloads=("SGEMM",), schemes=("flame",),
                            trials=6, scale="tiny", sites=("rpt",),
                            strikes_per_trial=2, harden_rpt=False)
        outcomes = [run_trial(t).outcome for t in spec.trial_specs()]
        assert any(o in (SDC, DUE_HANG, DUE_CRASH) for o in outcomes)

    def test_sanitizer_turns_corruption_into_due_crash(self):
        spec = CampaignSpec(workloads=("SGEMM",), schemes=("flame",),
                            trials=6, scale="tiny", sites=("rpt",),
                            strikes_per_trial=2, harden_rpt=False,
                            sanitize=True)
        results = [run_trial(t) for t in spec.trial_specs()]
        crashes = [r for r in results if r.outcome == DUE_CRASH]
        assert crashes
        assert any("SanitizerError" in r.detail for r in crashes)

    def test_missed_sensor_degrades_flame(self):
        spec = CampaignSpec(workloads=("Triad",), schemes=("flame",),
                            trials=8, scale="tiny",
                            sensor_miss_probability=0.999999)
        outcomes = [run_trial(t).outcome for t in spec.trial_specs()]
        assert RECOVERED not in outcomes
        assert any(o != MASKED for o in outcomes)

    def test_sanitize_preserves_clean_outcomes(self):
        plain = spec_for("flame", trials=3)
        checked = spec_for("flame", trials=3, sanitize=True)
        for a, b in zip(plain.trial_specs(), checked.trial_specs()):
            ra, rb = run_trial(a), run_trial(b)
            assert ra.outcome == rb.outcome
            assert ra.strike_cycles == rb.strike_cycles


class TestMultiSiteAggregate:
    def test_groups_by_site(self):
        results = [
            _result(0), _result(1, SDC),
            TrialResult(workload="Triad", scheme="baseline", index=0,
                        outcome=RECOVERED, site="shared_mem"),
        ]
        cells = aggregate(results)
        assert [(c.site, c.trials) for c in cells] == [
            ("dest_reg", 2), ("shared_mem", 1)]

    def test_merge_cells_pools_counts(self):
        results = ([_result(i, SDC if i < 2 else MASKED) for i in range(5)]
                   + [TrialResult(workload="Triad", scheme="baseline",
                                  index=i, outcome=RECOVERED,
                                  site="predicate") for i in range(5)])
        merged = merge_cells(aggregate(results), "Triad", "baseline")
        assert merged.site == "all"
        assert merged.trials == 10
        assert merged.counts[SDC] == 2
        assert merged.counts[RECOVERED] == 5
        rate, lo, hi = merged.rates[SDC]
        assert rate == 0.2 and lo < 0.2 < hi

    def test_merge_single_site_returns_it(self):
        (cell,) = aggregate([_result(0), _result(1)])
        assert merge_cells([cell], "Triad", "baseline") is cell
        assert merge_cells([cell], "SGEMM", "flame") is None

    def test_journal_roundtrip_preserves_site(self, tmp_path):
        journal = CampaignJournal(str(tmp_path / "j.jsonl"))
        journal.append(TrialResult(workload="Triad", scheme="flame",
                                   index=0, outcome=RECOVERED,
                                   site="simt_stack"))
        (loaded,) = journal.load()
        assert loaded.site == "simt_stack"

    def test_pre_site_journal_records_still_load(self, tmp_path):
        """Journals written before the multi-site surface carry no
        ``site`` field; they must load as dest_reg records."""
        path = tmp_path / "j.jsonl"
        record = _result(0, SDC).as_dict()
        record.pop("site", None)
        with open(path, "w") as handle:
            handle.write(json.dumps(record) + "\n")
        (loaded,) = CampaignJournal(str(path)).load()
        assert loaded.site == "dest_reg"
        assert loaded.outcome == SDC


class TestCheckpointAcceleration:
    """Checkpoint fast-start + convergence early-out is an execution
    strategy: it must be invisible in every journaled field."""

    def test_modes_share_campaign_id(self):
        direct = spec_for("flame", checkpoint=False)
        accelerated = spec_for("flame", checkpoint=True,
                               checkpoint_interval=64)
        assert direct.campaign_id() == accelerated.campaign_id()

    def test_trial_specs_carry_checkpoint_knobs(self):
        trial = spec_for("flame", checkpoint=True,
                         checkpoint_interval=128).trial_specs()[0]
        assert trial.checkpoint
        assert trial.checkpoint_interval == 128

    def test_interval_validation(self):
        with pytest.raises(ConfigError):
            spec_for("flame", checkpoint_interval=-1)

    @pytest.mark.parametrize("scheme", ["baseline", "flame"])
    def test_trials_byte_identical_to_direct(self, scheme):
        """Per-trial records must match field-for-field across modes,
        on both campaign workloads."""
        import dataclasses

        from repro.core import campaign as campaign_module

        spec = CampaignSpec(workloads=("Triad", "SGEMM"),
                            schemes=(scheme,), trials=5, seed=3,
                            scale="tiny", checkpoint=False)
        direct = [run_trial(t) for t in spec.trial_specs()]
        campaign_module._GOLDEN_CACHE.clear()
        accelerated_spec = dataclasses.replace(spec, checkpoint=True)
        accelerated = [run_trial(t)
                       for t in accelerated_spec.trial_specs()]
        for a, b in zip(direct, accelerated):
            assert a.as_dict() == b.as_dict()

    def test_golden_cache_is_bounded_lru(self, monkeypatch):
        from repro.core import campaign as campaign_module

        campaign_module._GOLDEN_CACHE.clear()
        monkeypatch.setenv("REPRO_GOLDEN_CACHE", "1")
        spec = CampaignSpec(workloads=("Triad",),
                            schemes=("baseline", "flame"), trials=1,
                            seed=0, scale="tiny")
        for trial in spec.trial_specs():
            run_trial(trial)
        assert len(campaign_module._GOLDEN_CACHE) == 1
        monkeypatch.delenv("REPRO_GOLDEN_CACHE")
        campaign_module._GOLDEN_CACHE.clear()


class TestDedupe:
    def test_identical_duplicates_collapse_in_first_seen_order(self):
        rows = [_result(0), _result(1), _result(0), _result(1), _result(2)]
        assert [r.index for r in dedupe_results(rows)] == [0, 1, 2]

    def test_measured_outcome_beats_infra_error_any_order(self):
        measured = _result(0, SDC)
        infra = _result(0, INFRA_ERROR)
        assert dedupe_results([infra, measured])[0].outcome == SDC
        assert dedupe_results([measured, infra])[0].outcome == SDC

    def test_representative_is_order_independent(self):
        # Two *different* measured rows for one key (should not happen
        # for pure trials, but the merge must still be deterministic).
        a = _result(0, MASKED)
        b = _result(0, RECOVERED)
        pick_ab = dedupe_results([a, b])[0].as_dict()
        pick_ba = dedupe_results([b, a])[0].as_dict()
        assert pick_ab == pick_ba


class TestJournalDurability:
    def test_fsync_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigError):
            CampaignJournal(str(tmp_path / "j.jsonl"), fsync_interval=0)

    def test_fsync_interval_batches_syncs(self, tmp_path, monkeypatch):
        syncs = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: syncs.append(fd) or real_fsync(fd))
        journal = CampaignJournal(str(tmp_path / "j.jsonl"),
                                  fsync_interval=2)
        for index in range(5):
            journal.append(_result(index))
        assert len(syncs) == 2  # after the 2nd and 4th append
        journal.close()
        assert len(syncs) == 3  # close drains the residual window
        journal.close()
        assert len(syncs) == 3  # idempotent: nothing left to sync

    def test_every_append_synced_by_default(self, tmp_path, monkeypatch):
        syncs = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: syncs.append(fd) or real_fsync(fd))
        journal = CampaignJournal(str(tmp_path / "j.jsonl"))
        for index in range(3):
            journal.append(_result(index))
        journal.close()
        assert len(syncs) == 3

    def test_journal_appends_after_close_reopen_lazily(self, tmp_path):
        journal = CampaignJournal(str(tmp_path / "j.jsonl"))
        journal.append(_result(0))
        journal.close()
        journal.append(_result(1))
        journal.close()
        assert [r.index for r in journal.load()] == [0, 1]

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with CampaignJournal(path) as journal:
            journal.append(_result(0))
        assert journal._handle is None
        assert [r.index for r in CampaignJournal(path).load()] == [0]
