"""Region Boundary Queue — the verification conveyor."""

import pytest
from hypothesis import given, strategies as st

from repro.core import RbqEntry, RegionBoundaryQueue
from repro.errors import ConfigError


class FakeWarp:
    def __init__(self, wid):
        self.id = wid


def entry(wid=0):
    return RbqEntry(warp=FakeWarp(wid), snapshot=None, enqueued_at=0)


class TestConveyor:
    def test_pops_exactly_wcdl_later(self):
        rbq = RegionBoundaryQueue(wcdl=5)
        rbq.enqueue(entry(1), cycle=10)
        for cycle in range(11, 15):
            assert rbq.pop_verified(cycle) is None
        popped = rbq.pop_verified(15)
        assert popped is not None
        assert popped.warp.id == 1

    def test_fifo_order(self):
        rbq = RegionBoundaryQueue(wcdl=3)
        rbq.enqueue(entry(1), cycle=0)
        rbq.enqueue(entry(2), cycle=1)
        assert rbq.pop_verified(3).warp.id == 1
        assert rbq.pop_verified(4).warp.id == 2

    def test_one_enqueue_per_cycle(self):
        rbq = RegionBoundaryQueue(wcdl=3)
        assert rbq.can_enqueue(0)
        rbq.enqueue(entry(1), cycle=0)
        assert not rbq.can_enqueue(0)
        assert rbq.can_enqueue(1)

    def test_flush_discards_everything(self):
        rbq = RegionBoundaryQueue(wcdl=4)
        rbq.enqueue(entry(1), cycle=0)
        rbq.enqueue(entry(2), cycle=1)
        flushed = rbq.flush()
        assert [e.warp.id for e in flushed] == [1, 2]
        assert len(rbq) == 0
        assert rbq.pop_verified(100) is None

    def test_next_pop_cycle(self):
        rbq = RegionBoundaryQueue(wcdl=7)
        assert rbq.next_pop_cycle() is None
        rbq.enqueue(entry(), cycle=3)
        assert rbq.next_pop_cycle() == 10

    def test_storage_bits_match_paper(self):
        """Section VI-A2: 20 x 6 = 120 bits for the default config."""
        assert RegionBoundaryQueue(wcdl=20).storage_bits == 120

    def test_wcdl_must_be_positive(self):
        with pytest.raises(ConfigError):
            RegionBoundaryQueue(wcdl=0)


class TestConveyorProperty:
    @given(st.lists(st.integers(1, 3), min_size=1, max_size=20),
           st.integers(1, 30))
    def test_every_entry_waits_exactly_wcdl(self, gaps, wcdl):
        """Whatever the enqueue pattern, each entry pops exactly WCDL
        cycles after it entered, in FIFO order."""
        rbq = RegionBoundaryQueue(wcdl=wcdl)
        cycle = 0
        expected = []
        for i, gap in enumerate(gaps):
            cycle += gap
            rbq.enqueue(entry(i), cycle=cycle)
            expected.append((i, cycle + wcdl))
        pops = []
        for c in range(cycle + wcdl + 1):
            popped = rbq.pop_verified(c)
            if popped is not None:
                pops.append((popped.warp.id, c))
        # FIFO, and never earlier than the deadline; one pop per cycle
        # may delay later entries but order is preserved.
        assert [p[0] for p in pops] == [e[0] for e in expected]
        for (wid, popped_at), (_, deadline) in zip(pops, expected):
            assert popped_at >= deadline
