"""Recovery PC Table unit behaviour."""

import numpy as np

from repro.core import RecoveryPcTable
from repro.isa import KernelBuilder
from repro.sim import LaunchConfig, Warp, WarpSnapshot


def make_warp(wid=0):
    from repro.isa import Special

    b = KernelBuilder("k")
    b.add(1, 2)
    b.add(3, 4)
    kernel = b.build()

    class FakeBlock:
        num_threads = 32
        first_warp_id = 0

    specials = {s: np.arange(32, dtype=float) for s in Special}
    return Warp(wid, FakeBlock(), kernel, num_regs=4, warp_size=32,
                specials=specials, params=np.zeros(1), age=wid)


class TestRpt:
    def test_register_initializes_to_entry(self):
        rpt = RecoveryPcTable()
        warp = make_warp()
        warp.pc = 0
        rpt.register_warp(warp)
        warp.pc = 2
        rpt.recover(warp)
        assert warp.pc == 0

    def test_update_advances_recovery_point(self):
        rpt = RecoveryPcTable()
        warp = make_warp()
        rpt.register_warp(warp)
        warp.pc = 1
        rpt.update(warp, WarpSnapshot.capture(warp))
        warp.pc = 2
        rpt.recover(warp)
        assert warp.pc == 1

    def test_entries_are_per_warp(self):
        rpt = RecoveryPcTable()
        w0, w1 = make_warp(0), make_warp(1)
        rpt.register_warp(w0)
        w1.pc = 2
        rpt.register_warp(w1)
        w0.pc = 1
        rpt.recover(w0)
        rpt.recover(w1)
        assert w0.pc == 0
        assert w1.pc == 2

    def test_drop(self):
        rpt = RecoveryPcTable()
        warp = make_warp()
        rpt.register_warp(warp)
        rpt.drop(warp)
        assert warp.id not in rpt.entries

    def test_storage_bits(self):
        assert RecoveryPcTable().storage_bits(32, 32) == 1024
        assert RecoveryPcTable().storage_bits(16, 32) == 512
