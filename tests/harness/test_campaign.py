"""Campaign orchestration: pooled dispatch, resume, retry hardening.

The resumability contract under test: kill a campaign after k trials,
rerun the same command, and the final aggregates are byte-identical to
an uninterrupted run.
"""

import json
import os

import pytest

from repro.core.campaign import (CampaignSpec, INFRA_ERROR, OUTCOMES,
                                 run_trial)
from repro.harness.campaign import (CampaignRunner, default_journal_path,
                                    run_campaign)


def small_spec(trials=4, **kwargs):
    kwargs.setdefault("workloads", ("Triad",))
    kwargs.setdefault("schemes", ("baseline", "flame"))
    return CampaignSpec(trials=trials, seed=1, scale="tiny",
                        timeout_s=120.0, **kwargs)


def aggregates_json(report):
    return json.dumps([c.as_dict() for c in report.cells], sort_keys=True)


class TestCampaignRun:
    def test_inline_campaign_completes(self, tmp_path):
        spec = small_spec()
        report = CampaignRunner(workers=1).run(
            spec, journal_path=str(tmp_path / "j.jsonl"))
        assert report.complete
        assert len(report.results) == 8
        for cell in report.cells:
            assert cell.trials == 4
            assert sum(cell.counts.values()) == 4
        # Flame must never leave an unrecovered strike.
        assert report.cell("Triad", "flame").unrecovered == 0

    def test_pooled_campaign_matches_inline(self, tmp_path):
        spec = small_spec()
        inline = CampaignRunner(workers=1).run(
            spec, journal_path=str(tmp_path / "inline.jsonl"))
        pooled = CampaignRunner(workers=2).run(
            spec, journal_path=str(tmp_path / "pooled.jsonl"))
        assert aggregates_json(inline) == aggregates_json(pooled)

    def test_rerun_resumes_from_journal(self, tmp_path):
        spec = small_spec()
        path = str(tmp_path / "j.jsonl")
        first = CampaignRunner(workers=1).run(spec, journal_path=path)
        calls = []

        runner = CampaignRunner(workers=1)
        runner._execute = lambda t: calls.append(t) or run_trial(t)
        second = runner.run(spec, journal_path=path)
        assert calls == []  # everything journaled; nothing re-ran
        assert aggregates_json(first) == aggregates_json(second)

    def test_interrupted_campaign_resumes_identically(self, tmp_path):
        spec = small_spec(trials=5)
        full_path = str(tmp_path / "full.jsonl")
        cut_path = str(tmp_path / "cut.jsonl")
        full = CampaignRunner(workers=1).run(spec, journal_path=full_path)
        # Simulate a mid-campaign kill: keep the header + 4 trials, with
        # the 5th record torn mid-write.
        with open(full_path) as handle:
            lines = handle.readlines()
        with open(cut_path, "w") as handle:
            handle.writelines(lines[:5])
            handle.write(lines[5][: len(lines[5]) // 2])
        resumed = CampaignRunner(workers=1).run(spec, journal_path=cut_path)
        assert resumed.complete
        assert aggregates_json(full) == aggregates_json(resumed)

    def test_fresh_discards_journal(self, tmp_path):
        spec = small_spec(trials=2)
        path = str(tmp_path / "j.jsonl")
        CampaignRunner(workers=1).run(spec, journal_path=path)
        before = os.path.getsize(path)
        CampaignRunner(workers=1).run(spec, journal_path=path, fresh=True)
        assert os.path.getsize(path) == before  # rewritten, not appended

    def test_default_journal_path_is_spec_keyed(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        a = default_journal_path(small_spec())
        assert a.startswith(str(tmp_path))
        assert a != default_journal_path(small_spec(trials=9))


class TestHardening:
    def test_transient_failure_retried(self, tmp_path):
        spec = small_spec(trials=2, schemes=("baseline",))
        failures = {"left": 2}

        def flaky(trial):
            if trial.index == 0 and failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("worker died")
            return run_trial(trial)

        runner = CampaignRunner(workers=1, max_retries=2, backoff_s=0.0)
        runner._execute = flaky
        report = runner.run(spec, journal_path=str(tmp_path / "j.jsonl"))
        assert report.complete
        assert report.infra_failures == 0
        retried = next(r for r in report.results if r.index == 0)
        assert retried.attempts == 3
        assert retried.outcome in OUTCOMES

    def test_persistent_failure_bounded_and_isolated(self, tmp_path):
        spec = small_spec(trials=3, schemes=("baseline",))

        def doomed(trial):
            if trial.index == 1:
                raise OSError("worker always dies")
            return run_trial(trial)

        runner = CampaignRunner(workers=1, max_retries=2, backoff_s=0.0)
        runner._execute = doomed
        report = runner.run(spec, journal_path=str(tmp_path / "j.jsonl"))
        # The doomed trial is journaled as infrastructure error after
        # bounded retries; the rest of the batch still completed.
        assert report.infra_failures == 1
        bad = next(r for r in report.results if r.index == 1)
        assert bad.outcome == INFRA_ERROR
        assert bad.attempts == 3
        assert "worker always dies" in bad.detail
        good = [r for r in report.results if r.index != 1]
        assert len(good) == 2
        assert all(r.outcome != INFRA_ERROR for r in good)

    def test_worker_death_in_pool_does_not_abort_batch(self, tmp_path):
        spec = small_spec(trials=3, schemes=("baseline",))
        runner = CampaignRunner(workers=2, max_retries=1, backoff_s=0.0)
        runner._execute = _die_on_index_one
        report = runner.run(spec, journal_path=str(tmp_path / "j.jsonl"))
        bad = next(r for r in report.results if r.index == 1)
        assert bad.outcome == INFRA_ERROR
        good = [r for r in report.results if r.index != 1]
        assert len(good) == 2
        assert all(r.outcome != INFRA_ERROR for r in good)


def _die_on_index_one(trial):
    """Module-level so the process pool can pickle it; hard-kills the
    worker to simulate an OOM kill / interpreter abort."""
    if trial.index == 1:
        os._exit(17)
    return run_trial(trial)


class TestFaultCoverageEntry:
    def test_experiments_wrapper(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.harness.experiments import fault_coverage

        report = fault_coverage(benchmarks=("Triad",),
                                schemes=("baseline",), trials=2,
                                workers=1)
        assert report.complete
        assert os.path.exists(report.journal_path)

    def test_unknown_names_fail_fast(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.errors import ConfigError
        from repro.harness.experiments import fault_coverage

        with pytest.raises(ConfigError, match="scheme"):
            fault_coverage(benchmarks=("Triad",), schemes=("flmae",),
                           trials=1, workers=1)
        with pytest.raises(ConfigError, match="workload"):
            fault_coverage(benchmarks=("Traid",), schemes=("baseline",),
                           trials=1, workers=1)

    def test_run_campaign_helper(self, tmp_path):
        report = run_campaign(small_spec(trials=1), workers=1,
                              journal_path=str(tmp_path / "j.jsonl"))
        assert report.complete

    def test_render_campaign(self, tmp_path):
        from repro.harness.reporting import render_campaign

        report = CampaignRunner(workers=1).run(
            small_spec(trials=2), journal_path=str(tmp_path / "j.jsonl"))
        text = render_campaign(report)
        assert "SDC rate" in text and "Unrecovered" in text
        assert "baseline" in text and "flame" in text


class TestBackoffPolicy:
    def _sleeps(self, monkeypatch):
        import time as time_module

        recorded = []
        monkeypatch.setattr(time_module, "sleep",
                            lambda s: recorded.append(s))
        return recorded

    def test_backoff_is_capped_exponential(self, tmp_path, monkeypatch):
        sleeps = self._sleeps(monkeypatch)
        runner = CampaignRunner(workers=1, backoff_s=1.0,
                                backoff_cap_s=4.0)
        trial = small_spec(trials=1).trial_specs()[0]
        for attempt in range(1, 8):
            runner._backoff(attempt, trial)
        # Envelope: min(cap, base * 2^(attempt-1)), jitter in [0.5, 1].
        for attempt, slept in enumerate(sleeps, start=1):
            envelope = min(4.0, 1.0 * 2 ** (attempt - 1))
            assert 0.5 * envelope <= slept <= envelope
        assert max(sleeps) <= 4.0

    def test_backoff_is_deterministic_per_trial(self, tmp_path,
                                                monkeypatch):
        sleeps = self._sleeps(monkeypatch)
        runner = CampaignRunner(workers=1, backoff_s=0.5)
        trials = small_spec(trials=2).trial_specs()
        runner._backoff(2, trials[0])
        runner._backoff(2, trials[0])
        runner._backoff(2, trials[1])
        assert sleeps[0] == sleeps[1]  # same trial, same delay
        assert sleeps[0] != sleeps[2]  # different trials de-synchronise

    def test_zero_base_disables_backoff(self, monkeypatch):
        sleeps = self._sleeps(monkeypatch)
        runner = CampaignRunner(workers=1, backoff_s=0.0)
        runner._backoff(3, small_spec(trials=1).trial_specs()[0])
        assert sleeps == []

    def test_retries_surface_in_heartbeat_metrics(self, tmp_path):
        spec = small_spec(trials=2, schemes=("baseline",))
        failures = {"left": 2}

        def flaky(trial):
            if trial.index == 0 and failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("worker died")
            return run_trial(trial)

        runner = CampaignRunner(workers=1, max_retries=2,
                                backoff_s=0.001)
        runner._execute = flaky
        metrics = tmp_path / "metrics.jsonl"
        report = runner.run(spec, journal_path=str(tmp_path / "j.jsonl"),
                            metrics_path=str(metrics))
        assert report.complete
        final = json.loads(metrics.read_text().splitlines()[-1])
        assert final["retries"] == 2
        assert final["infra_failures"] == 0
