"""Ablation framework: each design choice must matter where expected."""

import pytest

from repro.compiler import allocate_registers, compile_kernel, form_regions
from repro.harness.ablations import (ABLATIONS, AblationRow,
                                     render_ablation, run_ablation)
from repro.workloads import WORKLOADS


class TestKnobs:
    def test_no_provenance_cuts_streaming_kernels(self):
        """Without pointer provenance, disjoint-array streaming kernels
        get spurious boundary cuts."""
        for abbr in ("LBM", "Triad", "CS"):
            alloc = allocate_registers(WORKLOADS[abbr].instance("tiny").kernel)
            with_prov = form_regions(alloc.kernel, use_provenance=True)
            without = form_regions(alloc.kernel, use_provenance=False)
            assert without.boundaries > with_prov.boundaries, abbr

    def test_no_compaction_inflates_registers(self):
        kernel = WORKLOADS["SGEMM"].instance("tiny").kernel
        compacted = compile_kernel(kernel, "flame")
        inflated = compile_kernel(kernel, "flame", compact=False)
        assert inflated.regs_per_thread > compacted.regs_per_thread

    def test_knobs_preserve_semantics(self):
        """Every ablation variant still computes correct results (checked
        inside run_ablation via instance.verify)."""
        rows = run_ablation(benchmarks=("LBM",), scale="tiny")
        assert len(rows) == len(ABLATIONS)

    def test_unknown_variant_rejected(self):
        from repro.harness.ablations import _compile_variant

        with pytest.raises(ValueError):
            _compile_variant(WORKLOADS["Triad"].instance("tiny").kernel,
                             "nonsense", 20)


class TestStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_ablation(benchmarks=("LBM", "SGEMM"), scale="tiny")

    def test_matrix_complete(self, rows):
        assert {(r.benchmark, r.variant) for r in rows} == {
            (b, v) for b in ("LBM", "SGEMM") for v in ABLATIONS}

    def test_full_variant_never_worst_on_boundaries(self, rows):
        for bench in ("LBM", "SGEMM"):
            variants = {r.variant: r for r in rows if r.benchmark == bench}
            assert variants["full"].boundaries <= \
                variants["no_provenance"].boundaries
            assert variants["full"].regs_per_thread <= \
                variants["no_compaction"].regs_per_thread

    def test_render(self, rows):
        text = render_ablation(rows)
        assert "no_provenance" in text
        assert "LBM" in text
