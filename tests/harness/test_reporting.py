"""Text rendering of experiment results."""

from repro.harness import OverheadStudy, figure12, hwcost, table1, table2
from repro.harness.reporting import (pct, render_figure12, render_figure15,
                                     render_figure16, render_figure17,
                                     render_hwcost, render_table,
                                     render_table1, render_table2,
                                     render_figure13_14)


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table(["A", "Bee"], [[1, 2], [33, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Bee" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        text = render_table(["X"], [])
        assert "X" in text


class TestPct:
    def test_positive(self):
        assert pct(1.056) == "+5.60%"

    def test_negative(self):
        assert pct(0.95) == "-5.00%"


class TestRenderers:
    def test_table1(self):
        text = render_table1(table1())
        assert "SGEMM" in text and "GUPS" in text

    def test_figure12(self):
        counts = (50, 200)
        text = render_figure12(figure12(counts), counts)
        assert "GTX480" in text

    def test_table2(self):
        text = render_table2(table2())
        assert "200" in text

    def test_hwcost(self):
        text = render_hwcost(hwcost())
        assert "120" in text and "1024" in text

    def test_figure15(self):
        text = render_figure15({"flame": 1.006})
        assert "+0.60%" in text

    def test_figure16(self):
        text = render_figure16(
            {"LUD": {"without_opt": 1.15, "with_opt": 1.064}})
        assert "LUD" in text and "+6.40%" in text

    def test_figure17(self):
        text = render_figure17({10: 1.0013, 50: 1.021})
        assert "10" in text and "50" in text

    def test_figure13_14(self):
        study = OverheadStudy(scale="tiny", schemes=("flame",),
                              benchmarks=("Triad",),
                              normalized={"Triad": {"flame": 1.05}})
        text = render_figure13_14(study)
        assert "Triad" in text and "GEOMEAN" in text
