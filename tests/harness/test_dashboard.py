"""Live dashboard: pure rendering, TTY detection, rate history."""

import io

from repro.core.campaign import TrialResult
from repro.harness.dashboard import (LiveDashboard, render_dashboard,
                                     sparkline)
from repro.obs.metrics import MetricsRegistry, observe_trial


def snapshot(**extra):
    base = {"total_trials": 10, "completed": 4, "trials_per_sec": 2.0,
            "eta_s": 3.0, "elapsed_s": 2.0}
    base.update(extra)
    return base


def populated_registry():
    registry = MetricsRegistry()
    for outcome in ("masked", "masked", "sdc"):
        observe_trial(registry, TrialResult(
            workload="Triad", scheme="flame", site="dest_reg", index=0,
            outcome=outcome, cycles=100))
    return registry


class TestRenderDashboard:
    def test_progress_rate_and_eta(self):
        frame = render_dashboard(snapshot())
        assert "4/10 trials" in frame
        assert "2.00 trials/s" in frame
        assert "eta 3s" in frame

    def test_eta_formats_minutes_and_hours(self):
        assert "eta 2m05s" in render_dashboard(snapshot(eta_s=125))
        assert "eta 1h01m" in render_dashboard(snapshot(eta_s=3700))
        assert "eta --" in render_dashboard(snapshot(eta_s=None))

    def test_registry_cells_render_wilson_table(self):
        frame = render_dashboard(snapshot(),
                                 registry=populated_registry())
        assert "per-cell verdicts (live)" in frame
        assert "Triad" in frame
        assert "0.333" in frame  # 1 SDC / 3 trials

    def test_stall_bars_sorted_by_share(self):
        frame = render_dashboard(snapshot(
            stall_cycles={"rollback": 25, "barrier": 75}))
        assert frame.index("barrier") < frame.index("rollback")
        assert "75.0%" in frame and "25.0%" in frame

    def test_shard_staleness_line(self):
        frame = render_dashboard(snapshot(
            shard_staleness_s={"0": 1.0, "2": 7.0}, shards_done=1))
        assert "1 done" in frame
        assert "#2 7s ago" in frame

    def test_empty_snapshot_never_divides_by_zero(self):
        frame = render_dashboard({})
        assert "0/0 trials" in frame


class TestSparkline:
    def test_scales_to_max(self):
        line = sparkline([0.0, 1.0, 2.0])
        assert len(line) == 3
        assert line[-1] == "█"

    def test_all_zero_and_empty(self):
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "  "

    def test_window_clips_to_width(self):
        assert len(sparkline(list(range(100)), width=8)) == 8


class TestLiveDashboard:
    def test_non_tty_stream_gets_no_ansi(self):
        buf = io.StringIO()
        dash = LiveDashboard(stream=buf)
        dash.on_snapshot(snapshot())
        assert "\x1b" not in buf.getvalue()
        assert "4/10 trials" in buf.getvalue()

    def test_tty_stream_gets_clear_escape(self):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        buf = Tty()
        LiveDashboard(stream=buf).on_snapshot(snapshot())
        assert buf.getvalue().startswith("\x1b[2J\x1b[H")

    def test_rate_history_accumulates_into_sparkline(self):
        buf = io.StringIO()
        dash = LiveDashboard(stream=buf, history=4)
        for rate in (1.0, 2.0, 3.0, 4.0, 5.0):
            dash.on_snapshot(snapshot(trials_per_sec=rate))
        assert len(dash._rates) == 4  # ring clipped to history
        assert "history" in buf.getvalue()

    def test_broken_stream_never_raises(self):
        class Broken:
            def write(self, _):
                raise OSError("wedged terminal")

            def flush(self):
                raise OSError

        LiveDashboard(stream=Broken()).on_snapshot(snapshot())

    def test_status_fn_failure_degrades_to_no_shard_board(self):
        def boom():
            raise RuntimeError("coordinator gone")

        frame = LiveDashboard(status_fn=boom).render(snapshot())
        assert "shard lease board" not in frame
