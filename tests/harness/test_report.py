"""Campaign report artifacts: HTML/markdown, spec round-trip, and the
journals-stay-byte-identical invariant with metrics enabled."""

import re

import pytest

from repro.core.campaign import CampaignSpec
from repro.harness.campaign import run_campaign
from repro.harness.report import (families_from_registry,
                                  load_prom_snapshot,
                                  render_campaign_html,
                                  render_campaign_markdown,
                                  report_from_journal,
                                  write_campaign_report)
from repro.obs.metrics import MetricsRegistry, render_prom


def small_spec(seed=5):
    return CampaignSpec(workloads=("Triad",),
                        schemes=("baseline", "flame"), trials=2,
                        seed=seed, scale="tiny")


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("report")
    path = str(tmp / "journal.jsonl")
    registry = MetricsRegistry()
    report = run_campaign(small_spec(), journal_path=path, workers=1,
                          registry=registry)
    return report, registry, path


class TestHtmlReport:
    def test_report_is_self_contained(self, campaign, tmp_path):
        report, registry, _ = campaign
        html_path = str(tmp_path / "r.html")
        md_path = str(tmp_path / "r.md")
        written = write_campaign_report(report, html_path,
                                        md_path=md_path,
                                        registry=registry)
        assert written == [html_path, md_path]
        html = open(html_path).read()
        # Self-contained: no external fetches of any kind.
        assert not re.search(
            r'(src|href)\s*=\s*["\'](https?:)?//', html)
        assert "<style>" in html and "<script>" in html
        assert html.startswith("<!DOCTYPE html>")

    def test_report_tables_reflect_journal(self, campaign):
        report, registry, _ = campaign
        html = render_campaign_html(
            report, families=families_from_registry(registry))
        assert "Triad" in html and "flame" in html
        assert "Per-cell verdicts" in html
        assert "Coverage vs overhead" in html
        # The metrics snapshot supplies the Fig. 13 stall breakdown.
        assert "Stall-cause breakdown" in html
        assert "Unavailable: no metrics snapshot" not in html

    def test_report_without_metrics_degrades_gracefully(self, campaign):
        report, _, _ = campaign
        html = render_campaign_html(report, families=None)
        assert "Unavailable: no metrics snapshot" in html
        md = render_campaign_markdown(report, families=None)
        assert "Unavailable: no metrics snapshot" in md

    def test_markdown_twin_has_the_same_tables(self, campaign):
        report, registry, _ = campaign
        md = render_campaign_markdown(
            report, families=families_from_registry(registry))
        assert md.startswith("# Fault-injection campaign report")
        assert "| Workload |" in md
        assert "Stall-cause breakdown" in md

    def test_prom_snapshot_file_round_trip(self, campaign, tmp_path):
        _, registry, _ = campaign
        snap = tmp_path / "snap.prom"
        snap.write_text(render_prom(registry))
        families = load_prom_snapshot(str(snap))
        assert families == families_from_registry(registry)


class TestReportFromJournal:
    def test_spec_rides_in_the_journal_header(self, campaign):
        report, _, path = campaign
        rebuilt = report_from_journal(path)
        assert rebuilt.spec == report.spec
        assert rebuilt.complete
        assert len(rebuilt.results) == len(report.results)
        assert [c.counts for c in rebuilt.cells] == \
            [c.counts for c in report.cells]


class TestByteDeterminism:
    def test_journal_identical_with_and_without_metrics(self, tmp_path):
        """The tentpole invariant: instrumentation must never leak into
        the journal.  Same spec, metrics on vs off -> same bytes."""
        plain = str(tmp_path / "plain.jsonl")
        observed = str(tmp_path / "observed.jsonl")
        run_campaign(small_spec(seed=9), journal_path=plain, workers=1)
        seen = []
        run_campaign(small_spec(seed=9), journal_path=observed,
                     workers=1, registry=MetricsRegistry(),
                     on_snapshot=seen.append)
        assert open(plain, "rb").read() == open(observed, "rb").read()
        assert seen  # the dashboard hook really fired
