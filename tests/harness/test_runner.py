"""Experiment runner: execution, caching, and normalization."""

import pytest

from repro.errors import ConfigError
from repro.harness import RunOutcome, Runner, RunSpec, execute, normalized_time


@pytest.fixture
def runner(tmp_path):
    return Runner(cache_dir=str(tmp_path), workers=1)


class TestExecute:
    def test_single_run(self):
        outcome = execute(RunSpec(workload="Triad", scheme="baseline",
                                  scale="tiny"))
        assert outcome.cycles > 0
        assert outcome.verified
        assert outcome.instructions > 0

    def test_flame_run_records_regions(self):
        outcome = execute(RunSpec(workload="Triad", scheme="flame",
                                  scale="tiny"))
        assert outcome.avg_region_size > 0
        assert outcome.boundaries > 0
        assert outcome.rbq_enqueues > 0

    def test_unknown_workload(self):
        with pytest.raises(ConfigError):
            execute(RunSpec(workload="NOPE"))

    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            execute(RunSpec(workload="Triad", scheme="bogus"))


class TestCaching:
    def test_cache_round_trip(self, runner):
        spec = RunSpec(workload="Triad", scheme="baseline", scale="tiny")
        first = runner.run(spec)
        fresh_runner = Runner(cache_dir=runner.cache_dir, workers=1)
        second = fresh_runner.run(spec)
        assert second.cycles == first.cycles
        assert isinstance(second, RunOutcome)

    def test_fresh_bypasses_cache(self, runner):
        spec = RunSpec(workload="Triad", scheme="baseline", scale="tiny")
        runner.run(spec)
        fresh = Runner(cache_dir=runner.cache_dir, workers=1, fresh=True)
        assert fresh.run(spec).cycles == runner.run(spec).cycles

    def test_cache_key_distinguishes_fields(self):
        base = RunSpec(workload="Triad")
        assert base.cache_key() != RunSpec(workload="Triad",
                                           wcdl=30).cache_key()
        assert base.cache_key() != RunSpec(workload="Triad",
                                           scheduler="LRR").cache_key()
        assert base.cache_key() != RunSpec(workload="Triad",
                                           gpu="GV100").cache_key()

    def test_run_many_dedups(self, runner):
        spec = RunSpec(workload="Triad", scheme="baseline", scale="tiny")
        outcomes = runner.run_many([spec, spec, spec])
        assert len(outcomes) == 3
        assert all(o.cycles == outcomes[0].cycles for o in outcomes)


class TestCrashSafety:
    def test_store_leaves_no_temp_files(self, runner):
        spec = RunSpec(workload="Triad", scheme="baseline", scale="tiny")
        runner.run(spec)
        import os

        files = os.listdir(runner.cache_dir)
        assert not [f for f in files if f.startswith(".tmp_")]
        assert any(f.endswith(".json") for f in files)

    def test_store_is_atomic_replace(self, runner, monkeypatch):
        """A crash mid-write must never leave a truncated cache entry:
        the final payload appears via os.replace or not at all."""
        import json
        import os

        spec = RunSpec(workload="Triad", scheme="baseline", scale="tiny")
        outcome = runner.run(spec)
        path = runner._cache_path(spec)
        # The entry on disk parses even though a crashing writer was
        # simulated by failing the json.dump of a second store.
        calls = {"n": 0}
        real_dump = json.dump

        def exploding_dump(obj, handle, **kwargs):
            calls["n"] += 1
            raise OSError("disk full")

        monkeypatch.setattr(json, "dump", exploding_dump)
        with pytest.raises(OSError):
            runner._store(outcome)
        monkeypatch.setattr(json, "dump", real_dump)
        with open(path) as handle:
            assert json.load(handle)["cycles"] == outcome.cycles
        assert not [f for f in os.listdir(runner.cache_dir)
                    if f.startswith(".tmp_")]


class TestBatchIsolation:
    def test_one_bad_spec_does_not_abort_batch(self, runner):
        from repro.errors import ReproError

        good = RunSpec(workload="Triad", scheme="baseline", scale="tiny")
        bad = RunSpec(workload="NOPE", scheme="baseline", scale="tiny")
        with pytest.raises(ReproError) as info:
            runner.run_many([good, bad])
        # The failure names its own spec, and the good spec completed
        # and was cached despite it.
        assert "NOPE" in str(info.value)
        assert runner._load(good) is not None

    def test_pool_path_isolates_failures(self, tmp_path):
        from repro.errors import ReproError

        runner = Runner(cache_dir=str(tmp_path), workers=2)
        good = RunSpec(workload="Triad", scheme="baseline", scale="tiny")
        bad = RunSpec(workload="Triad", scheme="bogus", scale="tiny")
        with pytest.raises(ReproError) as info:
            runner.run_many([good, bad])
        assert "bogus" in str(info.value)
        assert runner._load(good) is not None

    def test_all_good_batch_unchanged(self, runner):
        specs = [RunSpec(workload="Triad", scheme="baseline", scale="tiny"),
                 RunSpec(workload="Triad", scheme="flame", scale="tiny")]
        outcomes = runner.run_many(specs)
        assert len(outcomes) == 2
        assert all(o.verified for o in outcomes)


class TestNormalization:
    def test_baseline_normalizes_to_one(self, runner):
        spec = RunSpec(workload="Triad", scheme="baseline", scale="tiny")
        assert normalized_time(runner, spec) == 1.0

    def test_flame_normalized(self, runner):
        spec = RunSpec(workload="Triad", scheme="flame", scale="tiny")
        ratio = normalized_time(runner, spec)
        assert 0.8 < ratio < 2.0

    def test_baselines_shared_across_wcdl(self, runner):
        for wcdl in (10, 20):
            normalized_time(runner, RunSpec(workload="Triad",
                                            scheme="flame", scale="tiny",
                                            wcdl=wcdl))
        # Only one baseline cache entry should exist.
        import os

        files = os.listdir(runner.cache_dir)
        baselines = [f for f in files if "baseline" in f]
        assert len(baselines) == 1
