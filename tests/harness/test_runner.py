"""Experiment runner: execution, caching, and normalization."""

import pytest

from repro.errors import ConfigError
from repro.harness import RunOutcome, Runner, RunSpec, execute, normalized_time


@pytest.fixture
def runner(tmp_path):
    return Runner(cache_dir=str(tmp_path), workers=1)


class TestExecute:
    def test_single_run(self):
        outcome = execute(RunSpec(workload="Triad", scheme="baseline",
                                  scale="tiny"))
        assert outcome.cycles > 0
        assert outcome.verified
        assert outcome.instructions > 0

    def test_flame_run_records_regions(self):
        outcome = execute(RunSpec(workload="Triad", scheme="flame",
                                  scale="tiny"))
        assert outcome.avg_region_size > 0
        assert outcome.boundaries > 0
        assert outcome.rbq_enqueues > 0

    def test_unknown_workload(self):
        with pytest.raises(ConfigError):
            execute(RunSpec(workload="NOPE"))

    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            execute(RunSpec(workload="Triad", scheme="bogus"))


class TestCaching:
    def test_cache_round_trip(self, runner):
        spec = RunSpec(workload="Triad", scheme="baseline", scale="tiny")
        first = runner.run(spec)
        fresh_runner = Runner(cache_dir=runner.cache_dir, workers=1)
        second = fresh_runner.run(spec)
        assert second.cycles == first.cycles
        assert isinstance(second, RunOutcome)

    def test_fresh_bypasses_cache(self, runner):
        spec = RunSpec(workload="Triad", scheme="baseline", scale="tiny")
        runner.run(spec)
        fresh = Runner(cache_dir=runner.cache_dir, workers=1, fresh=True)
        assert fresh.run(spec).cycles == runner.run(spec).cycles

    def test_cache_key_distinguishes_fields(self):
        base = RunSpec(workload="Triad")
        assert base.cache_key() != RunSpec(workload="Triad",
                                           wcdl=30).cache_key()
        assert base.cache_key() != RunSpec(workload="Triad",
                                           scheduler="LRR").cache_key()
        assert base.cache_key() != RunSpec(workload="Triad",
                                           gpu="GV100").cache_key()

    def test_run_many_dedups(self, runner):
        spec = RunSpec(workload="Triad", scheme="baseline", scale="tiny")
        outcomes = runner.run_many([spec, spec, spec])
        assert len(outcomes) == 3
        assert all(o.cycles == outcomes[0].cycles for o in outcomes)


class TestNormalization:
    def test_baseline_normalizes_to_one(self, runner):
        spec = RunSpec(workload="Triad", scheme="baseline", scale="tiny")
        assert normalized_time(runner, spec) == 1.0

    def test_flame_normalized(self, runner):
        spec = RunSpec(workload="Triad", scheme="flame", scale="tiny")
        ratio = normalized_time(runner, spec)
        assert 0.8 < ratio < 2.0

    def test_baselines_shared_across_wcdl(self, runner):
        for wcdl in (10, 20):
            normalized_time(runner, RunSpec(workload="Triad",
                                            scheme="flame", scale="tiny",
                                            wcdl=wcdl))
        # Only one baseline cache entry should exist.
        import os

        files = os.listdir(runner.cache_dir)
        baselines = [f for f in files if "baseline" in f]
        assert len(baselines) == 1
