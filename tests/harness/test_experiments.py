"""Experiment functions: structure and shape of every table/figure."""

import math

import pytest

from repro.harness import (ALL_BENCHMARKS, FIG13_SCHEMES, Runner, figure12,
                           figure13_14, figure15, figure16, figure17,
                           figure18, figure19, geomean, hwcost,
                           optimization_eligible_benchmarks, section4,
                           table1, table2)

#: A fast benchmark subset used for the study-shaped tests.
SUBSET = ("Triad", "SGEMM", "LBM")


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    return Runner(cache_dir=str(tmp_path_factory.mktemp("cache")),
                  workers=1)


class TestStaticExperiments:
    def test_table1_has_34_rows(self):
        assert len(table1()) == 34

    def test_figure12_series(self):
        counts = (50, 100, 200, 300)
        curves = figure12(counts)
        assert set(curves) == {"GTX480", "RTX2060", "GV100", "TITAN X"}
        for series in curves.values():
            assert len(series) == len(counts)
            assert series == sorted(series, reverse=True)

    def test_table2_rows(self):
        rows = table2()
        by_gpu = {r["gpu"]: r for r in rows}
        assert by_gpu["GTX480"]["sensors_per_sm"] == 200
        assert all(r["area_overhead"] < 0.001 for r in rows)

    def test_hwcost_rows(self):
        rows = hwcost()
        gtx = next(r for r in rows if r["gpu"] == "GTX480")
        assert gtx["rbq_bits"] == 120
        assert gtx["rpt_bits"] == 1024

    def test_geomean(self):
        assert math.isclose(geomean([1.0, 4.0]), 2.0)
        assert math.isnan(geomean([]))


class TestOverheadStudies:
    def test_figure13_structure(self, runner):
        study = figure13_14("tiny", schemes=("flame", "renaming"),
                            benchmarks=SUBSET, runner=runner)
        assert set(study.normalized) == set(SUBSET)
        for bench in SUBSET:
            for scheme in ("flame", "renaming"):
                assert study.normalized[bench][scheme] > 0.5
        gm = study.geomeans()
        assert set(gm) == {"flame", "renaming"}

    def test_figure13_scheme_list_matches_paper(self):
        assert len(FIG13_SCHEMES) == 8
        assert "flame" in FIG13_SCHEMES
        assert "baseline" not in FIG13_SCHEMES

    def test_figure17_monotone_trend(self, runner):
        result = figure17("tiny", wcdls=(10, 50), benchmarks=SUBSET,
                          runner=runner)
        assert result[10] <= result[50]

    def test_figure18_all_schedulers(self, runner):
        result = figure18("tiny", benchmarks=("Triad",), runner=runner)
        assert set(result) == {"GTO", "OLD", "LRR", "2LV"}
        assert all(0.8 < v < 2.0 for v in result.values())

    def test_figure19_all_gpus(self, runner):
        result = figure19("tiny", gpus=("GTX480", "GV100"),
                          benchmarks=("Triad",), runner=runner)
        assert set(result) == {"GTX480", "GV100"}

    def test_figure16_eligibility(self):
        eligible = optimization_eligible_benchmarks()
        # The paper found 7 benchmarks; our pattern detector finds a
        # comparable set that must include the paper's named ones.
        assert "LUD" in eligible or "CG" in eligible
        assert 5 <= len(eligible) <= 12

    def test_figure16_runs(self, runner):
        result = figure16("tiny", runner=runner)
        for bench, ratios in result.items():
            assert ratios["with_opt"] > 0.5
            assert ratios["without_opt"] > 0.5

    def test_section4_report(self, runner):
        report = section4("tiny", benchmarks=SUBSET, runner=runner)
        assert math.isclose(report["raw_strikes_per_day"], 1.3699,
                            abs_tol=1e-3)
        assert report["avg_region_instructions"] > 0

    def test_all_benchmarks_constant(self):
        assert len(ALL_BENCHMARKS) == 34
