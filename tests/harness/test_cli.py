"""CLI entry point."""

import pytest

from repro.harness.cli import EXPERIMENTS, main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SGEMM" in out and "GUPS" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "200" in capsys.readouterr().out

    def test_figure12(self, capsys):
        assert main(["figure12"]) == 0
        assert "GTX480" in capsys.readouterr().out

    def test_hwcost(self, capsys):
        assert main(["hwcost"]) == 0
        out = capsys.readouterr().out
        assert "120" in out and "1024" in out

    def test_figure15_subset(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["figure15", "--scale", "tiny",
                     "--benchmarks", "Triad", "--workers", "1"]) == 0
        assert "flame" in capsys.readouterr().out

    def test_campaign(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["campaign", "--scale", "tiny", "--benchmarks",
                     "Triad", "--trials", "3", "--workers", "1",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "SDC rate" in out and "Unrecovered" in out
        assert "baseline" in out and "flame" in out

    def test_campaign_resumes_via_journal(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        args = ["campaign", "--scale", "tiny", "--benchmarks", "Triad",
                "--schemes", "baseline", "--trials", "2", "--workers", "1"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0  # second run: everything journaled
        second = capsys.readouterr().out
        assert first[first.index("Workload"):] == \
            second[second.index("Workload"):]

    def test_campaign_metrics_json(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        metrics = tmp_path / "metrics.jsonl"
        assert main(["campaign", "--scale", "tiny", "--benchmarks",
                     "Triad", "--schemes", "flame", "--trials", "2",
                     "--workers", "1",
                     "--metrics-json", str(metrics)]) == 0
        capsys.readouterr()
        import json

        records = [json.loads(line)
                   for line in metrics.read_text().splitlines()]
        assert records and records[-1]["final"] is True
        assert records[-1]["completed"] == 2
        assert "trials_per_sec" in records[-1]
        assert "eta_s" in records[-1]
        assert "fast_start_hit_rate" in records[-1]

    def test_trace(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        assert main(["trace", "--scale", "tiny", "--benchmarks", "Triad",
                     "--trace-out", str(out), "--trace-jsonl", str(jsonl),
                     "--stall-report"]) == 0
        printed = capsys.readouterr().out
        assert "Stall-cause breakdown" in printed
        assert "issue" in printed
        import json

        from repro.obs import validate_chrome_trace

        data = json.loads(out.read_text())
        assert validate_chrome_trace(data) == []
        names = {e["name"] for e in data["traceEvents"]
                 if e.get("ph") != "M"}
        assert {"issue", "stall", "region_verify", "strike"} <= names
        assert jsonl.read_text().count("\n") == len(data["traceEvents"]) \
            - sum(1 for e in data["traceEvents"] if e.get("ph") == "M")

    def test_trace_no_inject_baseline(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["trace", "--scale", "tiny", "--benchmarks", "Triad",
                     "--scheme", "baseline", "--stall-report"]) == 0
        printed = capsys.readouterr().out
        assert "verified=True" in printed
        assert "strike@" not in printed

    def test_profile_out(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        out = tmp_path / "prof.pstats"
        assert main(["trace", "--scale", "tiny", "--benchmarks", "Triad",
                     "--scheme", "baseline", "--no-inject",
                     "--profile-out", str(out)]) == 0
        capsys.readouterr()
        import pstats

        stats = pstats.Stats(str(out))  # parses => valid pstats dump
        assert stats.total_calls > 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_experiment_list(self):
        assert "all" in EXPERIMENTS
        assert "ablation" in EXPERIMENTS
        assert "trace" in EXPERIMENTS
