"""CLI entry point."""

import pytest

from repro.harness.cli import EXPERIMENTS, main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SGEMM" in out and "GUPS" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "200" in capsys.readouterr().out

    def test_figure12(self, capsys):
        assert main(["figure12"]) == 0
        assert "GTX480" in capsys.readouterr().out

    def test_hwcost(self, capsys):
        assert main(["hwcost"]) == 0
        out = capsys.readouterr().out
        assert "120" in out and "1024" in out

    def test_figure15_subset(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["figure15", "--scale", "tiny",
                     "--benchmarks", "Triad", "--workers", "1"]) == 0
        assert "flame" in capsys.readouterr().out

    def test_campaign(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["campaign", "--scale", "tiny", "--benchmarks",
                     "Triad", "--trials", "3", "--workers", "1",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "SDC rate" in out and "Unrecovered" in out
        assert "baseline" in out and "flame" in out

    def test_campaign_resumes_via_journal(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        args = ["campaign", "--scale", "tiny", "--benchmarks", "Triad",
                "--schemes", "baseline", "--trials", "2", "--workers", "1"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0  # second run: everything journaled
        second = capsys.readouterr().out
        assert first[first.index("Workload"):] == \
            second[second.index("Workload"):]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_experiment_list(self):
        assert "all" in EXPERIMENTS
        assert "ablation" in EXPERIMENTS
