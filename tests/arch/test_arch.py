"""Architecture configs, acoustic sensor model, and fault-rate model."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.arch import (ALL_GPUS, FaultRates, GTX480, GV100, RTX2060,
                        SECONDS_PER_DAY, SensorMesh, TITAN_X, gpu_by_name,
                        sample_strike_cycles, section4_report,
                        sensors_for_wcdl, wcdl_curve, wcdl_for_sensors)
from repro.errors import ConfigError


class TestConfigs:
    def test_four_architectures(self):
        assert set(ALL_GPUS) == {"GTX480", "RTX2060", "GV100", "TITAN X"}

    def test_lookup(self):
        assert gpu_by_name("GTX480") is GTX480
        with pytest.raises(ConfigError):
            gpu_by_name("H100")

    def test_paper_frequencies(self):
        """Table II's frequency column."""
        assert GTX480.core_freq_mhz == 700
        assert RTX2060.core_freq_mhz == 1365
        assert GV100.core_freq_mhz == 1136
        assert TITAN_X.core_freq_mhz == 1000

    def test_paper_sm_counts(self):
        assert GTX480.num_sms == 16
        assert RTX2060.num_sms == 30
        assert GV100.num_sms == 80
        assert TITAN_X.num_sms == 24

    def test_warps_split_across_schedulers(self):
        for gpu in ALL_GPUS.values():
            assert gpu.max_warps_per_sm % gpu.num_schedulers == 0

    def test_scaled_copy(self):
        scaled = GTX480.scaled(sim_sms=1)
        assert scaled.sim_sms == 1
        assert GTX480.sim_sms == 2

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            GTX480.scaled(sim_sms=0)
        with pytest.raises(ConfigError):
            GTX480.scaled(max_warps_per_sm=63)  # not divisible by 2


class TestSensorModel:
    def test_default_calibration_point(self):
        """Paper Section VI-A1: GTX480 with 200 sensors -> 20 cycles."""
        assert wcdl_for_sensors(GTX480, 200) == 20

    def test_paper_range_50_to_300(self):
        """Paper: 50-300 sensors give roughly 50 to 15 cycles."""
        assert 45 <= wcdl_for_sensors(GTX480, 50) <= 56
        assert 14 <= wcdl_for_sensors(GTX480, 300) <= 17

    def test_table2_sensor_counts(self):
        """Table II within +-2 sensors."""
        expected = {"GTX480": 200, "RTX2060": 248, "GV100": 128,
                    "TITAN X": 260}
        for name, want in expected.items():
            got = sensors_for_wcdl(gpu_by_name(name), 20)
            assert abs(got - want) <= 2, (name, got)

    def test_area_overhead_below_paper_bound(self):
        """Paper: < 0.1% area overhead for every architecture."""
        for gpu in ALL_GPUS.values():
            mesh = SensorMesh(gpu, sensors_for_wcdl(gpu, 20))
            assert mesh.area_overhead < 0.001

    def test_inverse_consistency(self):
        for gpu in ALL_GPUS.values():
            for wcdl in (10, 20, 35, 50):
                n = sensors_for_wcdl(gpu, wcdl)
                assert wcdl_for_sensors(gpu, n) <= wcdl
                if n > 1:
                    assert wcdl_for_sensors(gpu, n - 1) > wcdl

    @given(st.integers(1, 2000), st.integers(1, 2000))
    def test_monotonicity(self, a, b):
        """More sensors never increase WCDL."""
        lo, hi = min(a, b), max(a, b)
        assert wcdl_for_sensors(GTX480, hi) <= wcdl_for_sensors(GTX480, lo)

    def test_curve_shape(self):
        curve = wcdl_curve(GTX480, [50, 100, 200, 300])
        assert curve == sorted(curve, reverse=True)

    def test_zero_sensors_rejected(self):
        with pytest.raises(ConfigError):
            wcdl_for_sensors(GTX480, 0)
        with pytest.raises(ConfigError):
            SensorMesh(GTX480, 0)


class TestFaultModel:
    def test_section4_arithmetic(self):
        """Paper: 0.5 post-masking errors/day -> ~1.37 raw strikes/day."""
        rates = FaultRates()
        assert math.isclose(rates.raw_strikes_per_day, 1.3699, abs_tol=1e-3)
        assert math.isclose(rates.false_positives_per_day, 0.87, abs_tol=0.01)

    def test_strike_rate_per_cycle(self):
        rates = FaultRates()
        per_cycle = rates.strikes_per_cycle(GTX480)
        cycles_per_day = 700e6 * SECONDS_PER_DAY
        assert math.isclose(per_cycle * cycles_per_day,
                            rates.raw_strikes_per_day)

    def test_recovery_overhead_negligible(self):
        """Section IV's conclusion: re-executing ~50 instructions ~1.4
        times per day is a vanishing fraction of machine time."""
        rates = FaultRates()
        frac = rates.recovery_overhead_fraction(GTX480, 50.23)
        assert frac < 1e-10

    def test_report_keys(self):
        report = section4_report()
        assert math.isclose(report["raw_strikes_per_day"], 1.3699,
                            abs_tol=1e-3)
        assert "false_positives_per_day" in report

    def test_invalid_rates(self):
        with pytest.raises(ConfigError):
            FaultRates(masking_rate=1.0)
        with pytest.raises(ConfigError):
            FaultRates(post_masking_errors_per_day=-1)

    def test_poisson_sampling(self):
        rng = np.random.default_rng(42)
        arrivals = sample_strike_cycles(0.01, 10_000, rng)
        assert all(0 <= a < 10_000 for a in arrivals)
        assert arrivals == sorted(arrivals)
        # Expect ~100 strikes; allow generous slack.
        assert 50 < len(arrivals) < 200

    def test_zero_rate_no_strikes(self):
        rng = np.random.default_rng(0)
        assert sample_strike_cycles(0.0, 1000, rng) == []

    def test_negative_rate_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            sample_strike_cycles(-1.0, 100, rng)
