"""The imperfect-sensor detection model layered on the WCDL power law."""

import numpy as np
import pytest

from repro.arch import GTX480, SensorMesh, SensorModel
from repro.errors import ConfigError


class TestValidation:
    def test_bad_wcdl(self):
        with pytest.raises(ConfigError):
            SensorModel(wcdl=0)

    @pytest.mark.parametrize("p", [-0.1, 1.5])
    def test_bad_miss_probability(self, p):
        with pytest.raises(ConfigError):
            SensorModel(wcdl=20, miss_probability=p)

    def test_bad_jitter(self):
        with pytest.raises(ConfigError):
            SensorModel(wcdl=20, jitter_cycles=-1)

    def test_perfect_flag(self):
        assert SensorModel(wcdl=20).perfect
        assert not SensorModel(wcdl=20, miss_probability=0.1).perfect
        assert not SensorModel(wcdl=20, jitter_cycles=3).perfect


class TestSampling:
    def test_perfect_delays_bounded_by_wcdl(self):
        model = SensorModel(wcdl=7)
        rng = np.random.default_rng(0)
        delays = [model.sample_delay(rng) for _ in range(500)]
        assert None not in delays
        assert min(delays) >= 1
        assert max(delays) <= 7

    def test_jitter_extends_past_wcdl(self):
        model = SensorModel(wcdl=5, jitter_cycles=10)
        rng = np.random.default_rng(1)
        delays = [model.sample_delay(rng) for _ in range(500)]
        assert max(delays) > 5          # some detection slips past WCDL
        assert max(delays) <= 15
        assert min(delays) >= 1

    def test_misses_at_given_rate(self):
        model = SensorModel(wcdl=20, miss_probability=0.5)
        rng = np.random.default_rng(2)
        misses = sum(model.sample_delay(rng) is None for _ in range(2000))
        assert 850 <= misses <= 1150    # ~N(1000, 22)

    def test_always_missing_sensor(self):
        model = SensorModel(wcdl=20, miss_probability=1.0)
        rng = np.random.default_rng(3)
        assert all(model.sample_delay(rng) is None for _ in range(50))

    def test_perfect_model_preserves_legacy_stream(self):
        """A perfect model must consume exactly one uniform draw per
        strike, keeping pre-sensor-model seeds reproducible."""
        model = SensorModel(wcdl=20)
        a = np.random.default_rng(42)
        b = np.random.default_rng(42)
        sampled = [model.sample_delay(a) for _ in range(100)]
        legacy = [int(b.integers(1, 21)) for _ in range(100)]
        assert sampled == legacy

    def test_deterministic_given_seed(self):
        model = SensorModel(wcdl=20, miss_probability=0.3, jitter_cycles=5)
        a = [model.sample_delay(np.random.default_rng(9)) for _ in range(1)]
        b = [model.sample_delay(np.random.default_rng(9)) for _ in range(1)]
        assert a == b


class TestMeshIntegration:
    def test_for_mesh_uses_power_law_wcdl(self):
        mesh = SensorMesh(GTX480, sensors_per_sm=200)
        model = SensorModel.for_mesh(mesh, miss_probability=0.01,
                                     jitter_cycles=2)
        assert model.wcdl == mesh.wcdl_cycles == 20
        assert model.miss_probability == 0.01
        assert model.jitter_cycles == 2
