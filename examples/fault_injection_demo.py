#!/usr/bin/env python
"""Fault injection demo: watch Flame absorb a particle-strike storm.

Launches the SGEMM benchmark three ways:

* fault-free under Flame (the golden run);
* under Flame with 15 injected strikes — every one is sensed within
  WCDL, all warps roll back to their Recovery-PC-Table entries, and the
  final output is bit-identical to the golden run;
* on an unprotected baseline GPU with the same strikes — silent data
  corruption.

Run:  python examples/fault_injection_demo.py
"""

import numpy as np

from repro.arch import GTX480
from repro.compiler import compile_kernel
from repro.core import FaultInjector, FlameRuntime
from repro.sim import Gpu
from repro.workloads import WORKLOADS

WCDL = 20
STRIKES = [100 + 211 * k for k in range(15)]


def launch(compiled, instance, runtime=None, injector=None):
    gpu = Gpu(GTX480, resilience=runtime) if runtime else Gpu(GTX480)
    gpu.fault_injector = injector
    mem = instance.fresh_memory()
    result = gpu.launch(compiled.kernel, instance.launch, mem,
                        regs_per_thread=compiled.regs_per_thread)
    return result, mem


def main():
    instance = WORKLOADS["SGEMM"].instance("tiny")
    flame = compile_kernel(instance.kernel, "flame", wcdl=WCDL)
    baseline = compile_kernel(instance.kernel, "baseline")

    golden_result, golden = launch(flame, instance, FlameRuntime(WCDL))
    print(f"golden run : {golden_result.cycles} cycles, output verified: "
          f"{instance.verify(golden)}")

    injector = FaultInjector(strike_cycles=STRIKES, wcdl=WCDL, seed=42)
    faulty_result, faulty = launch(flame, instance, FlameRuntime(WCDL),
                                   injector)
    landed = sum(1 for r in injector.records if r.landed)
    print(f"\nflame run under fire:")
    print(f"  strikes injected   : {len(injector.records)} "
          f"({landed} corrupted a live register)")
    for record in injector.records[:5]:
        where = (f"warp {record.warp_id} r{record.corrupted_reg}"
                 if record.landed else "no in-flight value (masked)")
        print(f"    strike @ {record.strike_cycle:5d} -> detected @ "
              f"{record.detect_cycle:5d} ({where})")
    print("    ...")
    print(f"  recoveries          : {faulty_result.stats.recoveries}")
    print(f"  cycles              : {faulty_result.cycles} "
          f"(golden {golden_result.cycles})")
    identical = np.array_equal(faulty, golden)
    print(f"  output == golden    : {identical}   <- idempotent recovery")
    assert identical

    sdc_runs = 0
    for seed in range(6):
        inj = FaultInjector(strike_cycles=STRIKES, wcdl=WCDL, seed=seed)
        _, mem = launch(baseline, instance, injector=inj)
        if not instance.verify(mem):
            sdc_runs += 1
    print(f"\nunprotected baseline, same storm, 6 seeds: "
          f"{sdc_runs}/6 runs ended in silent data corruption")


if __name__ == "__main__":
    main()
