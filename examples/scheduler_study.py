#!/usr/bin/env python
"""Sensitivity study: Flame's overhead vs WCDL and warp scheduler.

Reproduces the shape of the paper's Figures 17 and 18 on a three-
benchmark subset: the overhead grows with the sensors' worst-case
detection latency, and stays low for all four warp schedulers because
each one hides verification behind other ready warps.

Run:  python examples/scheduler_study.py
"""

from repro.harness import Runner, RunSpec, geomean, normalized_time

BENCHES = ("SGEMM", "LBM", "Triad")
SCALE = "tiny"


def main():
    runner = Runner(workers=1)

    print("Flame overhead vs WCDL (Figure 17 shape)")
    print(f"{'WCDL':>6} {'normalized time':>16}")
    for wcdl in (10, 20, 30, 40, 50):
        ratios = [normalized_time(runner,
                                  RunSpec(workload=bench, scheme="flame",
                                          scale=SCALE, wcdl=wcdl))
                  for bench in BENCHES]
        gm = geomean(ratios)
        print(f"{wcdl:>6} {gm:>16.4f}   ({100 * (gm - 1):+.2f}%)")

    print("\nFlame overhead per warp scheduler (Figure 18 shape)")
    print(f"{'sched':>6} {'normalized time':>16}")
    for scheduler in ("GTO", "OLD", "LRR", "2LV"):
        ratios = [normalized_time(runner,
                                  RunSpec(workload=bench, scheme="flame",
                                          scale=SCALE, scheduler=scheduler))
                  for bench in BENCHES]
        gm = geomean(ratios)
        print(f"{scheduler:>6} {gm:>16.4f}   ({100 * (gm - 1):+.2f}%)")

    print("\n(each scheme normalized to a no-resilience baseline using "
          "the same scheduler)")


if __name__ == "__main__":
    main()
