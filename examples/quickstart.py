#!/usr/bin/env python
"""Quickstart: write a kernel, protect it with Flame, run it.

This walks the whole public API surface in ~60 lines:

1. author a GPU kernel with the KernelBuilder eDSL;
2. compile it under the baseline and under Flame (idempotent regions +
   anti-dependent register renaming);
3. simulate both on the GTX480 model — Flame with the acoustic-sensor
   runtime (RBQ verification conveyor + RPT + WCDL-aware scheduling);
4. compare cycles, verify outputs.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.arch import GTX480
from repro.compiler import compile_kernel
from repro.core import FlameRuntime
from repro.isa import CmpOp, KernelBuilder
from repro.sim import Gpu, LaunchConfig

N = 4096

# -- 1. Write a saxpy-with-update kernel: y[i] = a*x[i] + y[i] ----------
b = KernelBuilder("saxpy", num_params=4)
n, a, x_ptr, y_ptr = b.params(4)
i = b.global_index()
in_range = b.setp(CmpOp.LT, i, n)
with b.if_(in_range):
    x = b.ld_global(b.add(x_ptr, i))
    y = b.ld_global(b.add(y_ptr, i))            # y is read...
    b.st_global(b.add(y_ptr, i), b.mad(a, x, y))  # ...and overwritten: WAR!
kernel = b.build()


def fresh_memory():
    mem = np.zeros(2 * N)
    mem[:N] = np.arange(N) / 7.0
    mem[N:] = 1.0
    return mem


def run(scheme_name):
    compiled = compile_kernel(kernel, scheme_name)
    runtime = (FlameRuntime(wcdl=20)
               if compiled.scheme.uses_sensor_runtime else None)
    gpu = Gpu(GTX480, resilience=runtime) if runtime else Gpu(GTX480)
    mem = fresh_memory()
    launch = LaunchConfig(grid=(N // 128, 1), block=(128, 1),
                          params=(N, 2.0, 0, N))
    result = gpu.launch(compiled.kernel, launch, mem,
                        regs_per_thread=compiled.regs_per_thread)
    return compiled, result, mem


def main():
    expected = 2.0 * (np.arange(N) / 7.0) + 1.0

    base_compiled, base, base_mem = run("baseline")
    flame_compiled, flame, flame_mem = run("flame")

    assert np.allclose(base_mem[N:], expected)
    assert np.allclose(flame_mem[N:], expected)

    print("kernel: y[i] = a*x[i] + y[i]   (in-place update: a memory WAR)")
    print(f"  baseline : {base.cycles:6d} cycles, "
          f"{base.stats.instructions} instructions")
    print(f"  flame    : {flame.cycles:6d} cycles, "
          f"{flame.stats.instructions} instructions, "
          f"{flame_compiled.regions.boundaries} region boundaries, "
          f"avg region {flame.stats.avg_region_size:.1f} insts")
    overhead = 100.0 * (flame.cycles / base.cycles - 1.0)
    print(f"  overhead : {overhead:+.2f}%  "
          "(WCDL-aware scheduling hides the 20-cycle verification delay)")
    print("  both runs produce the exact expected output.")


if __name__ == "__main__":
    main()
