#!/usr/bin/env python
"""A tour of the Flame compiler, re-enacting the paper's Figures 2 and 3.

Starts from a kernel with a memory anti-dependence and a register
anti-dependence, then shows what each pass does:

* register allocation (the PTX-level proxy of Section V-A) introduces
  the register reuse that creates register WARs;
* idempotent region formation cuts the memory WAR with a boundary;
* anti-dependent register renaming fixes the register WAR (Figure 3a);
* alternatively, live-out checkpointing circumvents it (Figure 3b);
* SwapCodes duplication and tail-DMR add the detection variants.

Run:  python examples/region_compiler_tour.py
"""

from repro.compiler import (allocate_registers, apply_tail_dmr,
                            duplicate_instructions, form_regions,
                            insert_checkpoints, RegWarPolicy, scan_kernel)
from repro.isa import parse_kernel

SOURCE = """
.kernel figure2
.params 2
    ld.param r0, [0]
    ld.param r1, [1]
    mul r2, %ctaid.x, %ntid.x
    add r2, r2, %tid.x
    add r3, r0, r2
    ld.global r4, [r3]
    add r5, r4, 10
    st.global [r3], r5
    mul r6, r4, r4
    add r7, r1, r2
    st.global [r7], r6
    exit
"""


def banner(title):
    print("\n" + "=" * 64)
    print(title)
    print("=" * 64)


def main():
    kernel = parse_kernel(SOURCE)
    banner("input (virtual registers, as written)")
    print(kernel.to_asm())

    allocated = allocate_registers(kernel)
    banner(f"after register allocation ({allocated.num_regs} registers)")
    print(allocated.kernel.to_asm())
    scan = scan_kernel(allocated.kernel)
    print(f"anti-dependence scan: {len(scan.mem_cuts)} memory WAR(s), "
          f"{len(scan.reg_wars)} register WAR(s)")

    formed = form_regions(allocated.kernel, policy=RegWarPolicy.RENAME)
    banner(f"after region formation + renaming "
           f"({formed.boundaries} boundaries, {formed.renames} renames, "
           f"{formed.rename_fallback_cuts} splits/cuts)")
    print(formed.kernel.to_asm())
    print("scan is clean:", scan_kernel(formed.kernel).clean)

    kept = form_regions(allocated.kernel, policy=RegWarPolicy.KEEP)
    war_regs = {var for _, var in kept.residual_reg_wars}
    ckpt = insert_checkpoints(kept.kernel, war_regs, prune=True)
    banner(f"checkpointing alternative ({ckpt.checkpoint_stores} "
           f"checkpoint stores, {ckpt.num_slots} slots per thread)")
    print(ckpt.kernel.to_asm())

    dup = duplicate_instructions(formed.kernel)
    banner(f"SwapCodes duplication ({dup.duplicated} replicas)")
    print(dup.kernel.to_asm())

    tail = apply_tail_dmr(formed.kernel, wcdl=4)
    banner(f"tail-DMR with WCDL=4 ({tail.duplicated} tail replicas)")
    print(tail.kernel.to_asm())


if __name__ == "__main__":
    main()
